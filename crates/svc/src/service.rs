//! The job service: admission control, one shared scheduler pool, event
//! fan-out and per-job replay logs.
//!
//! [`Service`] is transport-agnostic: readers (stdio, unix socket, tests)
//! feed request lines into [`Service::handle_line`] from any thread, while
//! one thread runs the scheduler loop ([`Service::run`]).  All admitted
//! jobs share ONE [`WorkPool`]: their units are submitted with the job's
//! [`Priority`] and [`CancelToken`], so a high-priority job's units
//! dispatch first even while a low-priority job is mid-curve, and newly
//! admitted jobs join the running pool at the next completion barrier.
//!
//! Every event of a job is appended (and flushed) to
//! `<log_dir>/job_<id>.ndjson` *before* it is delivered to the client, and
//! the job's rows are additionally streamed to
//! `<log_dir>/job_<id>_result.json` via [`StreamedRows`].  A client that
//! disappears mid-job (its sink returns `false`) simply stops receiving
//! events — the job keeps running and logging — and a later `resume`
//! request replays the log from any row index and reattaches the new
//! client for rows still to come.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

use fec_json::{Json, StreamedRows};
use fec_sched::{CancelToken, Job, JobOutcome, Priority, WorkPool};

use crate::job::{self, Unit};
use crate::protocol::{self, Request};

/// Where a service delivers protocol events for one client.
///
/// `deliver` returns `false` when the client is gone (closed pipe, dead
/// socket); the service then drops the sink while the job keeps running —
/// its events stay replayable from the job log.
pub trait EventSink: Send {
    /// Delivers one event line (without trailing newline).
    fn deliver(&mut self, line: &str) -> bool;
}

/// Service settings.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads of the shared pool (`0` = one per core).
    pub workers: usize,
    /// Admission limit: queued + running jobs (`accepted` but not `done`).
    pub max_jobs: usize,
    /// Directory for per-job replay logs and result artifacts.
    pub log_dir: PathBuf,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            max_jobs: 8,
            log_dir: PathBuf::from("svc-logs"),
        }
    }
}

/// The admission state of one job.
struct JobEntry {
    priority: Priority,
    cancel: CancelToken,
    /// Units not yet handed to the pool (drained when the job is staged).
    units: Vec<Unit>,
    units_total: usize,
    units_finished: usize,
    units_cancelled: usize,
    rows: u64,
    error: Option<String>,
    finished: bool,
    sink: Option<Box<dyn EventSink>>,
    log: std::fs::File,
    log_path: PathBuf,
    artifact: Option<StreamedRows>,
}

impl JobEntry {
    /// Appends the event to the replay log (flushed), then delivers it to
    /// the attached client, dropping the sink on a dead connection.
    fn emit(&mut self, event: &Json) {
        let line = event.to_string();
        writeln!(self.log, "{line}").expect("write job log");
        self.log.flush().expect("flush job log");
        if let Some(sink) = self.sink.as_mut() {
            if !sink.deliver(&line) {
                self.sink = None;
            }
        }
    }
}

struct State {
    next_job_id: u64,
    /// Admitted jobs not yet handed to the pool, in submission order.
    queue: Vec<u64>,
    jobs: BTreeMap<u64, JobEntry>,
    shutdown: bool,
}

/// The decode service: shared by the transport reader threads and the
/// scheduler thread.
pub struct Service {
    cfg: ServiceConfig,
    state: Mutex<State>,
    wake: Condvar,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service").field("cfg", &self.cfg).finish()
    }
}

type UnitResult = Result<Vec<Json>, String>;

impl Service {
    /// Creates the service and its log directory.
    ///
    /// # Panics
    ///
    /// Panics if the log directory cannot be created.
    pub fn new(cfg: ServiceConfig) -> Self {
        std::fs::create_dir_all(&cfg.log_dir).expect("create service log directory");
        Service {
            cfg,
            state: Mutex::new(State {
                next_job_id: 1,
                queue: Vec::new(),
                jobs: BTreeMap::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().expect("service state poisoned")
    }

    /// Handles one request line from a client whose events go to `sink`
    /// (cloned per admitted job).  Returns `false` on a shutdown request —
    /// the transport should stop reading from this client.
    pub fn handle_line<S: EventSink + Clone + 'static>(&self, line: &str, sink: &S) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        match protocol::parse_request(line) {
            Err(reason) => {
                sink.clone().deliver(&protocol::error(&reason).to_string());
                true
            }
            Ok(Request::Submit(spec)) => {
                self.submit(&spec, Box::new(sink.clone()));
                true
            }
            Ok(Request::Cancel { job_id }) => {
                self.cancel(job_id, sink);
                true
            }
            Ok(Request::Resume { job_id, from_row }) => {
                self.resume(job_id, from_row, Box::new(sink.clone()));
                true
            }
            Ok(Request::Shutdown) => {
                sink.clone().deliver(&protocol::shutting_down().to_string());
                self.request_shutdown();
                false
            }
        }
    }

    /// Validates and admits one job, replying `accepted` or `rejected` on
    /// `sink`; the sink stays attached for the job's events.
    fn submit(&self, spec: &Json, mut sink: Box<dyn EventSink>) {
        let parsed = match job::parse(spec) {
            Ok(parsed) => parsed,
            Err(reason) => {
                sink.deliver(&protocol::rejected(&reason).to_string());
                return;
            }
        };
        let mut st = self.lock();
        if st.shutdown {
            drop(st);
            sink.deliver(&protocol::rejected("service is shutting down").to_string());
            return;
        }
        let active = st.jobs.values().filter(|j| !j.finished).count();
        if active >= self.cfg.max_jobs {
            drop(st);
            sink.deliver(
                &protocol::rejected(&format!(
                    "at capacity: {active} active jobs (max {})",
                    self.cfg.max_jobs
                ))
                .to_string(),
            );
            return;
        }
        let id = st.next_job_id;
        st.next_job_id += 1;
        let log_path = self.cfg.log_dir.join(format!("job_{id}.ndjson"));
        let log = std::fs::File::create(&log_path).expect("create job log");
        let artifact = StreamedRows::create(
            &self.cfg.log_dir.join(format!("job_{id}_result.json")),
            parsed.kind,
            &[
                ("job_id", Json::from(id)),
                ("label", Json::str(parsed.label.clone())),
            ],
        );
        let accepted = protocol::accepted(
            id,
            parsed.kind,
            &parsed.label,
            parsed.units.len(),
            parsed.priority.name(),
        );
        let mut entry = JobEntry {
            priority: parsed.priority,
            cancel: CancelToken::new(),
            units_total: parsed.units.len(),
            units: parsed.units,
            units_finished: 0,
            units_cancelled: 0,
            rows: 0,
            error: None,
            finished: false,
            sink: Some(sink),
            log,
            log_path,
            artifact: Some(artifact),
        };
        entry.emit(&accepted);
        st.jobs.insert(id, entry);
        st.queue.push(id);
        drop(st);
        self.wake.notify_all();
    }

    /// The cancel token of an admitted job (set it to stop the job at the
    /// next queue barrier).  Also reachable mid-run from inside an
    /// [`EventSink`], which must not call back into the service.
    pub fn cancel_token(&self, job_id: u64) -> Option<CancelToken> {
        self.lock().jobs.get(&job_id).map(|j| j.cancel.clone())
    }

    fn cancel<S: EventSink + Clone>(&self, job_id: u64, sink: &S) {
        let mut st = self.lock();
        match st.jobs.get_mut(&job_id) {
            None => {
                drop(st);
                sink.clone()
                    .deliver(&protocol::error(&format!("unknown job id {job_id}")).to_string());
            }
            Some(entry) if entry.finished => {
                drop(st);
                sink.clone().deliver(
                    &protocol::error(&format!("job {job_id} already finished")).to_string(),
                );
            }
            Some(entry) => {
                entry.cancel.cancel();
                entry.emit(&protocol::cancelling(job_id));
            }
        }
    }

    /// Replays the job's logged `accepted`/`row`/`done` events (rows from
    /// `from_row` onwards) into `sink`, then — if the job is still running
    /// — attaches the sink for the rows still to come.  Replay and
    /// reattachment happen under the state lock, so no row is duplicated
    /// or missed around the hand-over point.
    fn resume(&self, job_id: u64, from_row: u64, mut sink: Box<dyn EventSink>) {
        let mut st = self.lock();
        let Some(entry) = st.jobs.get_mut(&job_id) else {
            drop(st);
            sink.deliver(&protocol::error(&format!("unknown job id {job_id}")).to_string());
            return;
        };
        let text = std::fs::read_to_string(&entry.log_path).expect("read job log");
        let mut alive = true;
        for line in text.lines() {
            let Ok(event) = Json::parse(line) else {
                continue;
            };
            let replay = match event.get("type").and_then(Json::as_str) {
                Some("accepted" | "done" | "cancelling") => true,
                Some("row") => event
                    .get("row")
                    .and_then(protocol::as_u64)
                    .is_some_and(|r| r >= from_row),
                _ => false,
            };
            if replay && alive {
                alive = sink.deliver(line);
            }
        }
        if alive && !entry.finished {
            entry.sink = Some(sink);
        }
    }

    /// Asks the scheduler loop to exit once the admitted work is finished.
    pub fn request_shutdown(&self) {
        self.lock().shutdown = true;
        self.wake.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// The scheduler loop: waits for admitted jobs, runs each batch on the
    /// shared pool (newly admitted jobs join at completion barriers), and
    /// returns once shutdown is requested and the queue is drained.
    pub fn run(&self) {
        loop {
            let ready = {
                let mut st = self.lock();
                loop {
                    if !st.queue.is_empty() {
                        break std::mem::take(&mut st.queue);
                    }
                    if st.shutdown {
                        return;
                    }
                    st = self.wake.wait(st).expect("service state poisoned");
                }
            };
            self.run_batch(ready);
        }
    }

    /// Runs the currently queued jobs to completion and returns (does not
    /// wait for shutdown) — the scheduler entry point for tests.
    pub fn drain(&self) {
        let ready = std::mem::take(&mut self.lock().queue);
        if !ready.is_empty() {
            self.run_batch(ready);
        }
    }

    fn run_batch(&self, ready: Vec<u64>) {
        let pool = WorkPool::new(self.cfg.workers);
        let mut next_pid = 0usize;
        let mut pid_to_job: BTreeMap<usize, u64> = BTreeMap::new();
        let initial = {
            let mut st = self.lock();
            let mut initial = Vec::new();
            for job_id in ready {
                stage(
                    &mut st,
                    job_id,
                    &mut next_pid,
                    &mut pid_to_job,
                    &mut initial,
                );
            }
            initial
        };
        if initial.is_empty() {
            return;
        }
        // The hint widens the pool beyond the first batch's unit count so
        // later-admitted jobs can still fan out over all workers.
        let hint = 4 * initial.len().max(64);
        pool.run()
            .concurrency_hint(hint)
            .jobs(initial, |pid, outcome, pool_sink| {
                let mut st = self.lock();
                let job_id = pid_to_job.remove(&pid).expect("unit maps to a job");
                record_outcome(&mut st, job_id, outcome);
                // Admission barrier: jobs submitted while the pool was busy
                // join here, with their own priority and cancel token.
                let newly = std::mem::take(&mut st.queue);
                let mut continuations = Vec::new();
                for job_id in newly {
                    stage(
                        &mut st,
                        job_id,
                        &mut next_pid,
                        &mut pid_to_job,
                        &mut continuations,
                    );
                }
                drop(st);
                pool_sink.submit_all(continuations);
            });
    }
}

/// Hands a queued job's units to the pool with the job's priority and
/// cancel token.
fn stage<'env>(
    st: &mut State,
    job_id: u64,
    next_pid: &mut usize,
    pid_to_job: &mut BTreeMap<usize, u64>,
    out: &mut Vec<Job<'env, UnitResult>>,
) {
    let Some(entry) = st.jobs.get_mut(&job_id) else {
        return;
    };
    for unit in std::mem::take(&mut entry.units) {
        let pid = *next_pid;
        *next_pid += 1;
        pid_to_job.insert(pid, job_id);
        out.push(
            Job::new(pid, move || job::run_unit(&unit))
                .with_priority(entry.priority)
                .with_cancel(entry.cancel.clone()),
        );
    }
}

/// Books one unit outcome against its job: emits the unit's rows (log
/// first, then client), and the `done` event when the last unit lands.
fn record_outcome(st: &mut State, job_id: u64, outcome: JobOutcome<UnitResult>) {
    let Some(entry) = st.jobs.get_mut(&job_id) else {
        return;
    };
    match outcome {
        JobOutcome::Cancelled => entry.units_cancelled += 1,
        JobOutcome::Done(Ok(rows)) => {
            for data in rows {
                if let Some(artifact) = entry.artifact.as_mut() {
                    artifact.push(&data);
                }
                let event = protocol::row(job_id, entry.rows, data);
                entry.emit(&event);
                entry.rows += 1;
            }
        }
        JobOutcome::Done(Err(message)) => {
            // First failure wins; retire the job's remaining units.
            entry.error.get_or_insert(message);
            entry.cancel.cancel();
        }
    }
    entry.units_finished += 1;
    if entry.units_finished == entry.units_total {
        let status = if entry.error.is_some() {
            "failed"
        } else if entry.units_cancelled > 0 {
            "cancelled"
        } else {
            "completed"
        };
        let done = protocol::done(job_id, entry.rows, status, entry.error.as_deref());
        entry.emit(&done);
        if let Some(artifact) = entry.artifact.take() {
            artifact.finish();
        }
        entry.finished = true;
        entry.sink = None;
    }
}
