//! `svc_check`: CI verifier for a daemon reply stream.
//!
//! Reads the line-delimited events a `fec_svc` run wrote to stdout and a
//! one-shot `ber_study --json` reference file, and checks that
//!
//! * every BER job's rows are row-for-row byte-identical to the reference
//!   curve with the job's label (matched per `Eb/N0` point, since daemon
//!   rows stream in completion order), with no duplicated or missing rows;
//! * every BER job finished with `status: "completed"`;
//! * at least one compliance job completed with at least one row;
//! * no `error`/`rejected` events appear in the stream;
//! * with `--log-dir`, each job's replay log carries exactly the rows the
//!   live stream delivered, byte for byte.
//!
//! Usage: `svc_check <replies.ndjson> <BER_reference.json> [--log-dir <dir>]`
//!
//! Exits non-zero with a description on the first mismatch.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;

use fec_json::Json;
use fec_svc::protocol::as_u64;

struct JobCheck {
    kind: String,
    label: String,
    rows: Vec<(u64, Json)>,
    done_status: Option<String>,
    done_rows: u64,
}

fn fail(message: &str) -> ! {
    eprintln!("svc_check: {message}");
    exit(1);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let replies_path = PathBuf::from(args.next().expect("usage: svc_check <replies> <reference>"));
    let reference_path =
        PathBuf::from(args.next().expect("usage: svc_check <replies> <reference>"));
    let mut log_dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--log-dir" => {
                log_dir = Some(PathBuf::from(
                    args.next().expect("--log-dir requires a directory"),
                ));
            }
            other => panic!("unrecognised argument: {other}"),
        }
    }

    let replies = std::fs::read_to_string(&replies_path).expect("read replies file");
    let jobs = collect_jobs(&replies);
    if jobs.is_empty() {
        fail("reply stream accepted no jobs");
    }

    let reference = std::fs::read_to_string(&reference_path).expect("read reference file");
    let reference = Json::parse(&reference).expect("parse reference file");
    let curves = curves_by_label(&reference);

    let mut ber_rows = 0usize;
    let mut compliance_done = 0usize;
    for (job_id, job) in &jobs {
        let status = job
            .done_status
            .as_deref()
            .unwrap_or_else(|| fail(&format!("job {job_id} has no done event")));
        if status != "completed" {
            fail(&format!("job {job_id} finished with status {status:?}"));
        }
        if job.done_rows != job.rows.len() as u64 {
            fail(&format!(
                "job {job_id} done event claims {} rows, stream delivered {}",
                job.done_rows,
                job.rows.len()
            ));
        }
        check_row_indices(*job_id, job);
        match job.kind.as_str() {
            "ber" => ber_rows += check_ber_job(*job_id, job, &curves),
            "compliance" => {
                if job.rows.is_empty() {
                    fail(&format!("compliance job {job_id} produced no rows"));
                }
                compliance_done += 1;
            }
            other => fail(&format!("job {job_id} has unknown kind {other:?}")),
        }
    }
    if ber_rows == 0 {
        fail("no BER rows were verified");
    }
    if compliance_done == 0 {
        fail("no compliance job completed");
    }
    if let Some(dir) = log_dir {
        for (job_id, job) in &jobs {
            check_replay_log(&dir, *job_id, job);
        }
    }
    println!(
        "svc_check: {} jobs verified ({ber_rows} BER rows byte-identical to {}, \
         {compliance_done} compliance jobs)",
        jobs.len(),
        reference_path.display()
    );
}

/// Groups the reply stream's events per job, failing on any error events.
fn collect_jobs(replies: &str) -> BTreeMap<u64, JobCheck> {
    let mut jobs = BTreeMap::new();
    for line in replies.lines().filter(|l| !l.trim().is_empty()) {
        let event =
            Json::parse(line).unwrap_or_else(|e| fail(&format!("unparsable reply {line:?}: {e}")));
        let ty = event
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("reply without type: {line}")));
        let job_id = || {
            event
                .get("job_id")
                .and_then(as_u64)
                .unwrap_or_else(|| fail(&format!("reply without job_id: {line}")))
        };
        match ty {
            "accepted" => {
                let kind = event.get("job").and_then(Json::as_str).unwrap_or("?");
                let label = event.get("label").and_then(Json::as_str).unwrap_or("?");
                jobs.insert(
                    job_id(),
                    JobCheck {
                        kind: kind.to_string(),
                        label: label.to_string(),
                        rows: Vec::new(),
                        done_status: None,
                        done_rows: 0,
                    },
                );
            }
            "row" => {
                let id = job_id();
                let row = event
                    .get("row")
                    .and_then(as_u64)
                    .unwrap_or_else(|| fail(&format!("row event without index: {line}")));
                let data = event
                    .get("data")
                    .unwrap_or_else(|| fail(&format!("row event without data: {line}")));
                jobs.get_mut(&id)
                    .unwrap_or_else(|| fail(&format!("row for unknown job {id}")))
                    .rows
                    .push((row, data.clone()));
            }
            "done" => {
                let id = job_id();
                let status = event
                    .get("status")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(&format!("done event without status: {line}")));
                let rows = event.get("rows").and_then(as_u64).unwrap_or(0);
                let job = jobs
                    .get_mut(&id)
                    .unwrap_or_else(|| fail(&format!("done for unknown job {id}")));
                job.done_status = Some(status.to_string());
                job.done_rows = rows;
            }
            "rejected" | "error" => fail(&format!("stream carries a failure event: {line}")),
            "shutting_down" | "cancelling" => {}
            other => fail(&format!("unknown event type {other:?}: {line}")),
        }
    }
    jobs
}

/// Row indices must be exactly 0..n in delivery order.
fn check_row_indices(job_id: u64, job: &JobCheck) {
    for (expected, (row, _)) in job.rows.iter().enumerate() {
        if *row != expected as u64 {
            fail(&format!(
                "job {job_id} row indices out of order: got {row} at position {expected}"
            ));
        }
    }
}

/// The reference curves of a `ber_study --json` file, keyed by label.
fn curves_by_label(reference: &Json) -> BTreeMap<String, Vec<Json>> {
    let mut curves = BTreeMap::new();
    let list = reference
        .get("curves")
        .and_then(Json::as_array)
        .unwrap_or_else(|| fail("reference file has no curves array"));
    for curve in list {
        let label = curve
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail("reference curve without label"));
        let points = curve
            .get("points")
            .and_then(Json::as_array)
            .unwrap_or_else(|| fail("reference curve without points"));
        curves.insert(label.to_string(), points.to_vec());
    }
    curves
}

/// Verifies one BER job against its reference curve; returns the number of
/// verified rows.
fn check_ber_job(job_id: u64, job: &JobCheck, curves: &BTreeMap<String, Vec<Json>>) -> usize {
    let points = curves.get(&job.label).unwrap_or_else(|| {
        fail(&format!(
            "reference has no curve labelled {:?} (job {job_id})",
            job.label
        ))
    });
    if job.rows.len() != points.len() {
        fail(&format!(
            "job {job_id} delivered {} rows, reference curve {:?} has {} points",
            job.rows.len(),
            job.label,
            points.len()
        ));
    }
    let mut used = vec![false; points.len()];
    for (row, data) in &job.rows {
        let label = data.get("label").and_then(Json::as_str).unwrap_or("?");
        if label != job.label {
            fail(&format!(
                "job {job_id} row {row} carries label {label:?}, expected {:?}",
                job.label
            ));
        }
        let point = data
            .get("point")
            .unwrap_or_else(|| fail(&format!("job {job_id} row {row} has no point")));
        let ebn0 = point
            .get("ebn0_db")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("job {job_id} row {row} has no ebn0_db")));
        // Daemon rows stream in completion order; match the reference point
        // by Eb/N0 and compare the full row byte-for-byte.
        let index = points
            .iter()
            .position(|p| p.get("ebn0_db").and_then(Json::as_f64) == Some(ebn0))
            .unwrap_or_else(|| {
                fail(&format!(
                    "job {job_id} row {row}: no reference point at {ebn0} dB"
                ))
            });
        if used[index] {
            fail(&format!("job {job_id} delivered the {ebn0} dB point twice"));
        }
        used[index] = true;
        let got = point.to_string();
        let want = points[index].to_string();
        if got != want {
            fail(&format!(
                "job {job_id} row {row} differs from the one-shot run at {ebn0} dB:\n\
                 daemon   : {got}\n\
                 reference: {want}"
            ));
        }
    }
    job.rows.len()
}

/// The replay log must carry exactly the rows the live stream delivered.
fn check_replay_log(dir: &std::path::Path, job_id: u64, job: &JobCheck) {
    let path = dir.join(format!("job_{job_id}.ndjson"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("read replay log {}: {e}", path.display())));
    let logged: Vec<(u64, String)> = text
        .lines()
        .filter_map(|line| {
            let event = Json::parse(line).ok()?;
            if event.get("type").and_then(Json::as_str) != Some("row") {
                return None;
            }
            Some((
                event.get("row").and_then(as_u64)?,
                event.get("data")?.to_string(),
            ))
        })
        .collect();
    let streamed: Vec<(u64, String)> = job
        .rows
        .iter()
        .map(|(row, data)| (*row, data.to_string()))
        .collect();
    if logged != streamed {
        fail(&format!(
            "job {job_id} replay log {} does not match the live stream \
             ({} logged rows vs {} streamed)",
            path.display(),
            logged.len(),
            streamed.len()
        ));
    }
}
