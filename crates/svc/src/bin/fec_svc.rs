//! `fec_svc`: the decode-as-a-service daemon.
//!
//! Accepts decode jobs as line-delimited JSON (see [`fec_svc::protocol`])
//! over stdio (default) or a unix socket, schedules them onto one shared
//! deterministic work pool, and streams row-level results back as they
//! complete.  Every event is appended to a per-job replay log under
//! `--log-dir` before delivery, so clients can disconnect and `resume`.
//!
//! Usage: `fec_svc [--stdio | --socket <path>] [--workers <n>]
//! [--max-jobs <n>] [--log-dir <dir>]`
//!
//! * `--stdio` — requests on stdin, events on stdout; EOF or a `shutdown`
//!   request finishes the admitted work and exits.
//! * `--socket <path>` (unix only) — serves multiple concurrent clients on
//!   a unix domain socket; a `shutdown` request from any client exits.
//! * `--workers` — worker threads of the shared pool (default one per
//!   core); results are bit-identical for any worker count.

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use fec_svc::{EventSink, Service, ServiceConfig};

/// A clonable sink delivering events to one shared writer (stdout or a
/// socket), line-buffered and flushed per event.
#[derive(Clone)]
struct SharedSink(Arc<Mutex<Box<dyn Write + Send>>>);

impl SharedSink {
    fn new(writer: impl Write + Send + 'static) -> Self {
        SharedSink(Arc::new(Mutex::new(Box::new(writer))))
    }
}

impl EventSink for SharedSink {
    fn deliver(&mut self, line: &str) -> bool {
        let mut out = self.0.lock().expect("sink writer poisoned");
        writeln!(out, "{line}").and_then(|()| out.flush()).is_ok()
    }
}

enum Transport {
    Stdio,
    Socket(PathBuf),
}

fn main() {
    let mut transport = Transport::Stdio;
    let mut cfg = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => transport = Transport::Stdio,
            "--socket" => {
                let path = args.next().expect("--socket requires a path");
                transport = Transport::Socket(PathBuf::from(path));
            }
            "--workers" => {
                let value = args.next().expect("--workers requires a thread count");
                cfg.workers = value.parse().expect("--workers takes an integer");
            }
            "--max-jobs" => {
                let value = args.next().expect("--max-jobs requires a job count");
                cfg.max_jobs = value.parse().expect("--max-jobs takes an integer");
                assert!(cfg.max_jobs > 0, "--max-jobs must be at least 1");
            }
            "--log-dir" => {
                let value = args.next().expect("--log-dir requires a directory");
                cfg.log_dir = PathBuf::from(value);
            }
            other => panic!("unrecognised argument: {other}"),
        }
    }
    let service = Service::new(cfg);
    match transport {
        Transport::Stdio => serve_stdio(&service),
        Transport::Socket(path) => serve_socket(&service, &path),
    }
}

/// Stdio transport: one reader thread feeds stdin lines to the service
/// while the main thread runs the scheduler; EOF requests shutdown.
fn serve_stdio(service: &Service) {
    // fec-lint: allow(no-thread-spawn, the daemon transport needs one reader thread; all decode fan-out still goes through the shared WorkPool)
    std::thread::scope(|scope| {
        let sink = SharedSink::new(std::io::stdout());
        // fec-lint: allow(no-thread-spawn, reader thread of the stdio transport; decode work stays on the WorkPool)
        scope.spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else {
                    break;
                };
                if !service.handle_line(&line, &sink) {
                    return;
                }
            }
            service.request_shutdown();
        });
        service.run();
    });
}

/// Unix-socket transport: the scheduler runs on its own thread; the main
/// thread accepts connections (non-blocking, so a shutdown request from
/// any client ends the accept loop) and serves each on a reader thread.
#[cfg(unix)]
fn serve_socket(service: &Service, path: &std::path::Path) {
    use std::os::unix::net::UnixListener;

    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).expect("bind unix socket");
    listener
        .set_nonblocking(true)
        .expect("set socket non-blocking");
    eprintln!("fec_svc listening on {}", path.display());
    // fec-lint: allow(no-thread-spawn, the daemon transport needs scheduler + per-client reader threads; all decode fan-out still goes through the shared WorkPool)
    std::thread::scope(|scope| {
        // fec-lint: allow(no-thread-spawn, scheduler thread of the socket transport)
        scope.spawn(|| service.run());
        while !service.is_shutdown() {
            match listener.accept() {
                Ok((stream, _)) => {
                    // fec-lint: allow(no-thread-spawn, per-client reader thread; decode work stays on the WorkPool)
                    scope.spawn(move || serve_client(service, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
                Err(e) => {
                    eprintln!("accept failed: {e}");
                    break;
                }
            }
        }
    });
    let _ = std::fs::remove_file(path);
}

#[cfg(unix)]
fn serve_client(service: &Service, stream: std::os::unix::net::UnixStream) {
    stream
        .set_nonblocking(false)
        .expect("set client stream blocking");
    // A finite read timeout lets the reader notice a daemon-wide shutdown
    // requested by another client instead of blocking forever.
    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(250)))
        .expect("set client read timeout");
    let reader = stream.try_clone().expect("clone client stream");
    let sink = SharedSink::new(stream);
    let mut reader = std::io::BufReader::new(reader);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if !service.handle_line(&line, &sink) {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if service.is_shutdown() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(not(unix))]
fn serve_socket(_service: &Service, _path: &std::path::Path) {
    eprintln!("--socket requires a unix platform; use --stdio");
    std::process::exit(2);
}
