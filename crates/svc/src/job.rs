//! Job specifications: validation of `submit` requests and execution of
//! their work units.
//!
//! A job is decomposed into independent [`Unit`]s at admission time — one
//! unit per `Eb/N0` point for a BER job, one unit per standard scope for a
//! compliance job — and every unit is plain owned data, so it can be moved
//! into the shared pool as one [`fec_sched::Job`].  Units construct their
//! codec in the worker and run a **single-worker** engine (the engine's
//! per-shard RNG streams are keyed on `(seed, shard, ebn0_db)`, so a
//! point's counts are byte-identical to the same point of a one-shot
//! multi-worker curve run).
//!
//! Validation is fallible end to end: a bad standard, codec key, block
//! length or stop-rule setting turns into a `rejected` reason, never a
//! daemon panic.

use code_tables::{dvb_rcs_ctc, wifi_ldpc, wran_ldpc, LteTurboCode, Standard};
use decoder_bench::{
    dvb_rcs_turbo_codec, ldpc_codec, lte_turbo_codec, quantized_ldpc_codec, standard_snrs,
    study_engine_config, study_seed, turbo_codec, wifi_ldpc_codec, wran_ldpc_codec, AdaptiveFlags,
    CodecClass, LdpcFlavor,
};
use fec_channel::sim::{FecCodec, SimulationEngine};
use fec_json::{Json, ToJson};
use fec_sched::Priority;
use noc_decoder::{run_multi_compliance_sharded, ComplianceScope, DecoderConfig};
use wimax_ldpc::{CodeRate, QcLdpcCode};
use wimax_turbo::{CtcCode, ExtrinsicExchange};

use crate::protocol::as_u64;

/// A validated, admitted job: its display label, scheduling priority and
/// the work units the scheduler hands to the pool.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job kind, `"ber"` or `"compliance"`.
    pub kind: &'static str,
    /// Display label (the codec name for BER jobs, the scope for
    /// compliance jobs) — matches the `label` of the one-shot CLI output.
    pub label: String,
    /// Scheduling priority at the shared pool.
    pub priority: Priority,
    /// The independent work units, in submission order.
    pub units: Vec<Unit>,
}

/// One independent work unit of a job; plain owned data, safe to move into
/// a pool worker.
#[derive(Debug, Clone)]
pub enum Unit {
    /// One `Eb/N0` point of a BER study curve.
    Ber {
        /// The curve family settings shared by the job's points.
        spec: BerSpec,
        /// The point's `Eb/N0` in dB.
        ebn0_db: f64,
    },
    /// One standard's compliance sweep at the paper design point.
    Compliance {
        /// The standard to evaluate.
        standard: Standard,
        /// `true` for the full code set, `false` for the corner subset.
        full: bool,
    },
}

/// Which decoder a BER job runs, named like the CLI flags that select it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecKey {
    /// Layered normalized min-sum, f64 reference datapath.
    Layered,
    /// Two-phase flooding normalized min-sum.
    Flooding,
    /// Fixed-point layered min-sum (the hardware datapath model).
    Quantized,
    /// Binary turbo (LTE only).
    Turbo,
    /// Duo-binary CTC with symbol-level extrinsic exchange.
    TurboSymbol,
    /// Duo-binary CTC with bit-level extrinsic exchange.
    TurboBit,
}

/// The settings of one BER curve family, identical to a `ber_study` run
/// with the same options (same seed, same engine assembly).
#[derive(Debug, Clone)]
pub struct BerSpec {
    /// The standard whose code is decoded.
    pub standard: Standard,
    /// The decoder flavour.
    pub codec: CodecKey,
    /// Block size: LDPC length `n`, turbo info bits `k`, or CTC couples.
    pub block: usize,
    /// λ quantization width for the WiMAX fixed-point datapath.
    pub lambda_bits: u32,
    /// Frames per point (exact in fixed mode, a cap in adaptive mode).
    pub frames: u64,
    /// Frames per lockstep batch decode call.
    pub batch_frames: usize,
    /// Optional confidence-targeted stop rule.
    pub adaptive: Option<AdaptiveFlags>,
}

impl BerSpec {
    fn class(&self) -> CodecClass {
        match self.codec {
            CodecKey::Layered | CodecKey::Flooding | CodecKey::Quantized => CodecClass::Ldpc,
            CodecKey::Turbo | CodecKey::TurboSymbol | CodecKey::TurboBit => CodecClass::Turbo,
        }
    }

    /// Builds the codec.  Infallible after [`parse`] validated the block.
    fn build_codec(&self) -> Box<dyn FecCodec> {
        let flavor = match self.codec {
            CodecKey::Layered => Some(LdpcFlavor::Layered),
            CodecKey::Flooding => Some(LdpcFlavor::Flooding),
            CodecKey::Quantized => Some(LdpcFlavor::Quantized),
            _ => None,
        };
        match (self.standard, self.codec) {
            (Standard::Wimax, CodecKey::Quantized) => {
                quantized_ldpc_codec(self.block, self.lambda_bits)
            }
            (Standard::Wimax, CodecKey::TurboSymbol) => {
                turbo_codec(self.block, ExtrinsicExchange::SymbolLevel)
            }
            (Standard::Wimax, CodecKey::TurboBit) => {
                turbo_codec(self.block, ExtrinsicExchange::BitLevel)
            }
            (Standard::Wimax, _) => ldpc_codec(self.block, flavor.expect("ldpc key")),
            (Standard::Wifi80211n, _) => wifi_ldpc_codec(self.block, flavor.expect("ldpc key")),
            (Standard::Wran80222, _) => wran_ldpc_codec(self.block, flavor.expect("ldpc key")),
            (Standard::Lte, _) => lte_turbo_codec(self.block),
            (Standard::DvbRcs, CodecKey::TurboSymbol) => {
                dvb_rcs_turbo_codec(self.block, ExtrinsicExchange::SymbolLevel)
            }
            (Standard::DvbRcs, _) => dvb_rcs_turbo_codec(self.block, ExtrinsicExchange::BitLevel),
        }
    }

    fn engine(&self) -> SimulationEngine {
        // One worker: the unit runs serial inline on the pool worker it was
        // scheduled on — no nested thread fan-out — and its counts are
        // byte-identical to any multi-worker one-shot run of the same point.
        SimulationEngine::new(study_engine_config(
            self.frames,
            1,
            self.batch_frames,
            self.adaptive,
            study_seed(self.standard, self.class()),
        ))
    }
}

/// Validates a `submit` request object into a [`JobSpec`].  The error
/// string becomes the `rejected` reason verbatim.
pub fn parse(request: &Json) -> Result<JobSpec, String> {
    let priority = match request.get("priority").map(|v| v.as_str()) {
        None => Priority::Normal,
        Some(Some("high")) => Priority::High,
        Some(Some("normal")) => Priority::Normal,
        Some(Some("low")) => Priority::Low,
        Some(_) => return Err("\"priority\" must be \"high\", \"normal\" or \"low\"".to_string()),
    };
    match request.get("job").and_then(Json::as_str) {
        Some("ber") => parse_ber(request, priority),
        Some("compliance") => parse_compliance(request, priority),
        Some(other) => Err(format!(
            "unknown job kind {other:?} (valid: ber, compliance)"
        )),
        None => Err("submit needs a \"job\" field (\"ber\" or \"compliance\")".to_string()),
    }
}

fn parse_standard(request: &Json) -> Result<Option<Standard>, String> {
    match request.get("standard") {
        None => Ok(None),
        Some(v) => {
            let name = v.as_str().ok_or("\"standard\" must be a string")?;
            name.parse().map(Some).map_err(|e| format!("{e}"))
        }
    }
}

fn parse_ber(request: &Json, priority: Priority) -> Result<JobSpec, String> {
    let standard = parse_standard(request)?.unwrap_or(Standard::Wimax);
    let codec = match request.get("codec").map(|v| v.as_str()) {
        None => Ok(match standard {
            Standard::Lte => CodecKey::Turbo,
            Standard::DvbRcs => CodecKey::TurboBit,
            _ => CodecKey::Layered,
        }),
        Some(Some("layered")) => Ok(CodecKey::Layered),
        Some(Some("flooding")) => Ok(CodecKey::Flooding),
        Some(Some("quantized")) => Ok(CodecKey::Quantized),
        Some(Some("turbo")) => Ok(CodecKey::Turbo),
        Some(Some("turbo-symbol")) => Ok(CodecKey::TurboSymbol),
        Some(Some("turbo-bit")) => Ok(CodecKey::TurboBit),
        Some(_) => Err(
            "\"codec\" must be one of layered, flooding, quantized, turbo, \
                        turbo-symbol, turbo-bit"
                .to_string(),
        ),
    }?;
    validate_combo(standard, codec)?;

    let block = match request.get("block") {
        None => default_block(standard, codec),
        Some(v) => as_u64(v).ok_or("\"block\" must be a positive integer")? as usize,
    };
    validate_block(standard, codec, block)?;

    let lambda_bits = match request.get("lambda_bits") {
        None => 7,
        Some(v) => {
            if !(standard == Standard::Wimax && codec == CodecKey::Quantized) {
                return Err(
                    "\"lambda_bits\" is only meaningful for the wimax quantized codec".to_string(),
                );
            }
            let bits = as_u64(v).ok_or("\"lambda_bits\" must be a positive integer")?;
            if !(2..=15).contains(&bits) {
                return Err("\"lambda_bits\" must be in 2..=15".to_string());
            }
            bits as u32
        }
    };

    let frames = match request.get("frames") {
        None => 60,
        Some(v) => match as_u64(v) {
            Some(f) if f > 0 => f,
            _ => return Err("\"frames\" must be a positive integer".to_string()),
        },
    };
    let batch_frames = match request.get("batch_frames") {
        None => 1,
        Some(v) => match as_u64(v) {
            Some(b) if b > 0 => b as usize,
            _ => return Err("\"batch_frames\" must be a positive integer".to_string()),
        },
    };
    let adaptive = match request.get("adaptive") {
        None | Some(Json::Bool(false)) => None,
        Some(Json::Bool(true)) => Some(AdaptiveFlags::default()),
        Some(obj @ Json::Obj(_)) => {
            let mut flags = AdaptiveFlags::default();
            if let Some(w) = obj.get("target_rel_width") {
                flags.target_rel_width =
                    w.as_f64().ok_or("\"target_rel_width\" must be a number")?;
            }
            if let Some(c) = obj.get("confidence") {
                flags.confidence = c.as_f64().ok_or("\"confidence\" must be a number")?;
            }
            Some(flags)
        }
        Some(_) => return Err("\"adaptive\" must be a bool or an object".to_string()),
    };
    let snrs = match request.get("snrs") {
        None => standard_snrs(standard).to_vec(),
        Some(v) => {
            let items = v.as_array().ok_or("\"snrs\" must be an array of numbers")?;
            if items.is_empty() {
                return Err("\"snrs\" must not be empty".to_string());
            }
            items
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| "\"snrs\" must be an array of numbers".to_string())
                })
                .collect::<Result<Vec<f64>, String>>()?
        }
    };

    let spec = BerSpec {
        standard,
        codec,
        block,
        lambda_bits,
        frames,
        batch_frames,
        adaptive,
    };
    // Reuse the engine's own validation for the stop-rule ranges so the
    // daemon rejects exactly what the CLI would panic on.
    spec.engine_config_for_validation().validate()?;
    let label = spec.build_codec().name();
    let units = snrs
        .into_iter()
        .map(|ebn0_db| Unit::Ber {
            spec: spec.clone(),
            ebn0_db,
        })
        .collect();
    Ok(JobSpec {
        kind: "ber",
        label,
        priority,
        units,
    })
}

impl BerSpec {
    fn engine_config_for_validation(&self) -> fec_channel::sim::EngineConfig {
        study_engine_config(
            self.frames,
            1,
            self.batch_frames,
            self.adaptive,
            study_seed(self.standard, self.class()),
        )
    }
}

fn parse_compliance(request: &Json, priority: Priority) -> Result<JobSpec, String> {
    let standard = parse_standard(request)?;
    let full = match request.get("scope").map(|v| v.as_str()) {
        None | Some(Some("corners")) => false,
        Some(Some("full")) => true,
        Some(_) => return Err("\"scope\" must be \"corners\" or \"full\"".to_string()),
    };
    let standards: Vec<Standard> = match standard {
        Some(s) => vec![s],
        None => Standard::all().to_vec(),
    };
    let label = format!(
        "compliance-{}-{}",
        if full { "full" } else { "corners" },
        standard.map_or("all".to_string(), |s| s.flag().to_string())
    );
    let units = standards
        .into_iter()
        .map(|standard| Unit::Compliance { standard, full })
        .collect();
    Ok(JobSpec {
        kind: "compliance",
        label,
        priority,
        units,
    })
}

/// Standard/codec combinations the registries can actually build.
fn validate_combo(standard: Standard, codec: CodecKey) -> Result<(), String> {
    let ok = match standard {
        Standard::Wimax => codec != CodecKey::Turbo,
        Standard::Wifi80211n | Standard::Wran80222 => matches!(
            codec,
            CodecKey::Layered | CodecKey::Flooding | CodecKey::Quantized
        ),
        Standard::Lte => codec == CodecKey::Turbo,
        Standard::DvbRcs => matches!(codec, CodecKey::TurboSymbol | CodecKey::TurboBit),
    };
    if ok {
        Ok(())
    } else {
        Err(format!(
            "codec is not available for standard {}",
            standard.flag()
        ))
    }
}

/// The `ber_study` default block per `(standard, codec class)` family.
fn default_block(standard: Standard, codec: CodecKey) -> usize {
    match (standard, codec) {
        (Standard::Wimax, CodecKey::TurboSymbol | CodecKey::TurboBit) => 240,
        (Standard::Wimax, _) => 576,
        (Standard::Wifi80211n, _) => 648,
        (Standard::Wran80222, _) => 480,
        (Standard::Lte, _) => 1024,
        (Standard::DvbRcs, _) => 212,
    }
}

/// Checks the block against the standard's code registry without
/// constructing a decoder (the same tables the codec builders `expect` on).
fn validate_block(standard: Standard, codec: CodecKey, block: usize) -> Result<(), String> {
    let result = match (standard, codec) {
        (Standard::Wimax, CodecKey::TurboSymbol | CodecKey::TurboBit) => CtcCode::wimax(block)
            .map(|_| ())
            .map_err(|e| format!("{e:?}")),
        (Standard::Wimax, _) => QcLdpcCode::wimax(block, CodeRate::R12)
            .map(|_| ())
            .map_err(|e| format!("{e:?}")),
        (Standard::Wifi80211n, _) => wifi_ldpc(block, CodeRate::R12)
            .map(|_| ())
            .map_err(|e| format!("{e:?}")),
        (Standard::Wran80222, _) => wran_ldpc(block, CodeRate::R12)
            .map(|_| ())
            .map_err(|e| format!("{e:?}")),
        (Standard::Lte, _) => LteTurboCode::new(block)
            .map(|_| ())
            .map_err(|e| format!("{e:?}")),
        (Standard::DvbRcs, _) => dvb_rcs_ctc(block).map(|_| ()).map_err(|e| format!("{e:?}")),
    };
    result.map_err(|e| format!("invalid block {block} for {}: {e}", standard.flag()))
}

/// Executes one work unit, returning its result rows in order.  Panics in
/// the decode path (none are expected after validation) are caught and
/// turned into an error string, so a failing job never takes the daemon or
/// its pool down.
pub fn run_unit(unit: &Unit) -> Result<Vec<Json>, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_unit_inner(unit))) {
        Ok(result) => result,
        Err(panic) => Err(panic_message(&panic)),
    }
}

fn run_unit_inner(unit: &Unit) -> Result<Vec<Json>, String> {
    match unit {
        Unit::Ber { spec, ebn0_db } => {
            let codec = spec.build_codec();
            let point = spec.engine().run_point(codec.as_ref(), *ebn0_db);
            Ok(vec![Json::obj([
                ("label", Json::str(codec.name())),
                ("point", point.to_json()),
            ])])
        }
        Unit::Compliance { standard, full } => {
            let scope = if *full {
                ComplianceScope::full(*standard)
            } else {
                ComplianceScope::corners(*standard)
            };
            let mut rows = Vec::new();
            run_multi_compliance_sharded(
                &DecoderConfig::paper_design_point(),
                &[scope],
                1,
                |_, entry| rows.push(entry.to_json()),
            )
            .map_err(|e| format!("{e}"))?;
            Ok(rows)
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("unit panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("unit panicked: {s}")
    } else {
        "unit panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn ber_defaults_mirror_ber_study() {
        let spec = parse(&submit(r#"{"type":"submit","job":"ber"}"#)).unwrap();
        assert_eq!(spec.kind, "ber");
        assert_eq!(spec.label, "wimax-ldpc-n576-layered");
        assert_eq!(spec.priority, Priority::Normal);
        assert_eq!(spec.units.len(), standard_snrs(Standard::Wimax).len());
        let Unit::Ber { spec: ber, ebn0_db } = &spec.units[0] else {
            panic!("expected a BER unit");
        };
        assert_eq!(ber.frames, 60);
        assert_eq!(ber.batch_frames, 1);
        assert_eq!(*ebn0_db, standard_snrs(Standard::Wimax)[0]);
    }

    #[test]
    fn ber_options_are_honored() {
        let spec = parse(&submit(
            r#"{"type":"submit","job":"ber","standard":"dvbrcs","codec":"turbo-symbol",
               "block":48,"frames":10,"priority":"high","snrs":[2.0,3.0]}"#,
        ))
        .unwrap();
        assert_eq!(spec.label, "dvbrcs-ctc-48c-symbol");
        assert_eq!(spec.priority, Priority::High);
        assert_eq!(spec.units.len(), 2);
    }

    #[test]
    fn invalid_submissions_are_rejected_with_reasons() {
        let cases = [
            (r#"{"type":"submit"}"#, "\"job\" field"),
            (r#"{"type":"submit","job":"fly"}"#, "unknown job kind"),
            (
                r#"{"type":"submit","job":"ber","standard":"gsm"}"#,
                "unknown standard",
            ),
            (
                r#"{"type":"submit","job":"ber","codec":"warp"}"#,
                "\"codec\" must be",
            ),
            (
                r#"{"type":"submit","job":"ber","standard":"lte","codec":"layered"}"#,
                "not available",
            ),
            (
                r#"{"type":"submit","job":"ber","block":577}"#,
                "invalid block 577",
            ),
            (r#"{"type":"submit","job":"ber","frames":0}"#, "\"frames\""),
            (
                r#"{"type":"submit","job":"ber","priority":"urgent"}"#,
                "\"priority\"",
            ),
            (
                r#"{"type":"submit","job":"ber","adaptive":{"confidence":2.0}}"#,
                "confidence",
            ),
            (
                r#"{"type":"submit","job":"compliance","scope":"half"}"#,
                "\"scope\"",
            ),
        ];
        for (text, needle) in cases {
            let err = parse(&submit(text)).unwrap_err();
            assert!(err.contains(needle), "{text} -> {err}");
        }
    }

    #[test]
    fn compliance_jobs_decompose_per_standard() {
        let spec = parse(&submit(r#"{"type":"submit","job":"compliance"}"#)).unwrap();
        assert_eq!(spec.kind, "compliance");
        assert_eq!(spec.label, "compliance-corners-all");
        assert_eq!(spec.units.len(), Standard::all().len());
        let one = parse(&submit(
            r#"{"type":"submit","job":"compliance","standard":"wimax","scope":"full"}"#,
        ))
        .unwrap();
        assert_eq!(one.label, "compliance-full-wimax");
        assert_eq!(one.units.len(), 1);
    }

    #[test]
    fn ber_unit_rows_match_the_one_shot_engine_point() {
        let spec = parse(&submit(
            r#"{"type":"submit","job":"ber","frames":5,"snrs":[2.0]}"#,
        ))
        .unwrap();
        let rows = run_unit(&spec.units[0]).unwrap();
        assert_eq!(rows.len(), 1);
        // The reference: the same engine assembly the CLI uses, at a
        // different worker count — bit-identical by the engine contract.
        let engine = SimulationEngine::new(study_engine_config(
            5,
            4,
            1,
            None,
            study_seed(Standard::Wimax, CodecClass::Ldpc),
        ));
        let reference = engine.run_point(
            decoder_bench::ldpc_codec(576, LdpcFlavor::Layered).as_ref(),
            2.0,
        );
        assert_eq!(
            rows[0].get("point").unwrap().to_string(),
            reference.to_json().to_string()
        );
        assert_eq!(
            rows[0].get("label").and_then(Json::as_str),
            Some("wimax-ldpc-n576-layered")
        );
    }

    #[test]
    fn compliance_unit_produces_corner_rows() {
        let rows = run_unit(&Unit::Compliance {
            standard: Standard::DvbRcs,
            full: false,
        })
        .unwrap();
        assert!(!rows.is_empty());
        for row in &rows {
            assert!(row.get("throughput_mbps").is_some(), "{row}");
        }
    }
}
