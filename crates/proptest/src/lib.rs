//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds in fully offline environments, so the real
//! crates.io `proptest` cannot be fetched.  This crate implements the subset
//! the workspace's property tests use: the [`proptest!`] macro, integer and
//! float range strategies, [`collection::vec`], [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`], with a deterministic per-test
//! RNG so failures are reproducible.
//!
//! Unlike the real crate there is no shrinking: a failing case reports the
//! case number and the assertion message.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     // In a test module this would carry `#[test]`.
//!     fn addition_commutes(a in -100i32..100, b in -100i32..100) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Why a generated test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; it does not count towards
    /// the configured number of cases.
    Reject,
    /// A `prop_assert*` failed with the given message.
    Fail(String),
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategies over collections.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `len`.
    #[derive(Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors of values from `element` with lengths in `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Builds the deterministic RNG for one property test, seeded from the test
/// name so each test gets an independent but reproducible stream.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across Rust versions, unlike
    // `DefaultHasher`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Defines property tests.  See the crate-level example.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u64 = 0;
                let max_attempts: u64 = (config.cases as u64) * 20 + 100;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest `{}`: too many cases rejected by prop_assume!",
                        stringify!($name),
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed on case {}: {}",
                                stringify!($name),
                                accepted,
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the property-test runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Rejects the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        collection, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 0u8..=1, b in -5i32..5, x in -1.0f64..1.0) {
            prop_assert!(a <= 1);
            prop_assert!((-5..5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_strategy_respects_length(v in collection::vec(0u8..=1, 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            prop_assert!(v.iter().all(|&b| b <= 1));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn test_rng_is_deterministic() {
        use rand::Rng;
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    proptest! {
        // No #[test] attribute: invoked manually by `failing_property_panics`.
        fn always_fails(_n in 0u8..4) {
            prop_assert!(false, "boom");
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        always_fails();
    }
}
