//! The zero-cost [`Recorder`] trait and its two implementations.
//!
//! Hot decoder loops are generic over `R: Recorder` and wrap every
//! recording site in `if R::ENABLED { .. }`.  `ENABLED` is an associated
//! `const`, so for [`NoopRecorder`] the branch folds to nothing at
//! monomorphization time and the un-instrumented entry points compile to
//! exactly the code they produced before instrumentation existed — the
//! kernels bench gates this staying true.

use crate::metrics::{Class, Registry};

/// Sink for metric events emitted by instrumented code.
///
/// Metric names are `&'static str` so that the enabled path pays one
/// `BTreeMap` lookup per flush and the disabled path pays nothing at
/// all (no formatting, no allocation).
pub trait Recorder {
    /// Whether this recorder observes anything.  Instrumented code must
    /// gate every recording block on this constant.
    const ENABLED: bool;

    /// Adds `by` to counter `name`.
    fn incr(&mut self, class: Class, name: &'static str, by: u64);

    /// Raises gauge `name` to at least `value`.
    fn gauge_max(&mut self, class: Class, name: &'static str, value: u64);

    /// Records `value` into histogram `name`.
    fn observe(&mut self, class: Class, name: &'static str, value: u64);

    /// Records a span duration in nanoseconds (always timing-class).
    fn timing(&mut self, name: &'static str, ns: u64);
}

/// The default sink: compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn incr(&mut self, _class: Class, _name: &'static str, _by: u64) {}

    #[inline(always)]
    fn gauge_max(&mut self, _class: Class, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn observe(&mut self, _class: Class, _name: &'static str, _value: u64) {}

    #[inline(always)]
    fn timing(&mut self, _name: &'static str, _ns: u64) {}
}

impl Recorder for Registry {
    const ENABLED: bool = true;

    fn incr(&mut self, class: Class, name: &'static str, by: u64) {
        Registry::incr(self, class, name, by);
    }

    fn gauge_max(&mut self, class: Class, name: &'static str, value: u64) {
        Registry::gauge_max(self, class, name, value);
    }

    fn observe(&mut self, class: Class, name: &'static str, value: u64) {
        Registry::observe(self, class, name, value);
    }

    fn timing(&mut self, name: &'static str, ns: u64) {
        Registry::timing(self, name, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_into<R: Recorder>(rec: &mut R) {
        if R::ENABLED {
            rec.incr(Class::Count, "calls", 1);
        }
    }

    #[test]
    fn registry_records_and_noop_exists() {
        let mut reg = Registry::new();
        record_into(&mut reg);
        record_into(&mut NoopRecorder);
        assert_eq!(reg.counter("calls"), Some(1));
        const { assert!(!NoopRecorder::ENABLED) };
    }
}
