//! Human-readable ASCII rendering of a [`Registry`].
//!
//! Pure string formatting — no I/O, no time, no dependencies — so the
//! same report can be printed by a binary or embedded in a test
//! failure message.

use std::fmt::Write as _;

use crate::metrics::{Class, Histogram, MetricValue, Registry};

const BAR_WIDTH: usize = 32;

/// Renders the full registry as a sectioned ASCII report: counts first
/// (the deterministic class), then execution, then timing, with
/// proportional bars for histogram buckets.
pub fn render_report(registry: &Registry) -> String {
    let mut out = String::new();
    for class in [Class::Count, Class::Execution, Class::Timing] {
        let mut header_done = false;
        for (name, metric) in registry.iter() {
            if metric.class != class {
                continue;
            }
            if !header_done {
                let _ = writeln!(out, "== {} ==", class.section());
                header_done = true;
            }
            match &metric.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<44} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<44} max={v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{name:<44} n={} sum={}", h.total(), h.sum());
                    render_histogram(&mut out, h);
                }
                MetricValue::Timing(t) => {
                    let _ = writeln!(
                        out,
                        "{name:<44} n={} total={} mean={} min={} max={}",
                        t.count,
                        t.total_ns,
                        t.mean_ns(),
                        if t.count == 0 { 0 } else { t.min_ns },
                        t.max_ns
                    );
                }
            }
        }
        if header_done {
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn render_histogram(out: &mut String, h: &Histogram) {
    let peak = h
        .counts()
        .iter()
        .copied()
        .chain(std::iter::once(h.overflow()))
        .max()
        .unwrap_or(0);
    if peak == 0 {
        return;
    }
    for (&bound, &count) in h.bounds().iter().zip(h.counts()) {
        if count == 0 {
            continue;
        }
        render_bar(out, &format!("<={bound}"), count, peak);
    }
    if h.overflow() > 0 {
        render_bar(out, "inf", h.overflow(), peak);
    }
}

fn render_bar(out: &mut String, label: &str, count: u64, peak: u64) {
    let width = ((count as u128 * BAR_WIDTH as u128).div_ceil(peak as u128)) as usize;
    let _ = writeln!(
        out,
        "  {label:>8} | {:<BAR_WIDTH$} {count}",
        "#".repeat(width)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sections_and_bars() {
        let mut r = Registry::new();
        r.incr(Class::Count, "codec.frames", 10);
        for v in [1, 2, 2, 3, 9] {
            r.observe(Class::Count, "codec.iterations", v);
        }
        r.gauge_max(Class::Execution, "pool.queue_depth_hw", 4);
        r.timing("pool.task_run_ns", 1_000);
        let text = render_report(&r);
        assert!(text.contains("== counts =="));
        assert!(text.contains("== execution =="));
        assert!(text.contains("== timing_ns =="));
        assert!(text.contains("codec.frames"));
        assert!(text.contains('#'), "histogram bars missing:\n{text}");
    }

    #[test]
    fn empty_registry_renders_placeholder() {
        assert!(render_report(&Registry::new()).contains("no metrics"));
    }
}
