//! Dependency-free instrumentation layer for the decoder workspace.
//!
//! Every other layer — the Monte-Carlo [`SimulationEngine`], the
//! `fec-sched` work pool, the fixed-point layered LDPC datapath and the
//! f64 reference decoders — reports through this crate.  The design
//! splits metrics into three classes with different guarantees:
//!
//! * **Count** metrics ([`Class::Count`]) are part of the determinism
//!   contract: for a fixed seed they are bit-identical at any worker
//!   count and any batch size, exactly like error counts.  They are the
//!   only class included in [`Registry::render_counts`], which the
//!   determinism tests byte-compare.
//! * **Execution** metrics ([`Class::Execution`]) describe *how* the run
//!   was executed — per-worker task totals, queue high-water marks,
//!   per-lane lockstep occupancy — and legitimately vary with the
//!   worker/batch configuration while staying deterministic for a fixed
//!   configuration.
//! * **Timing** metrics ([`Class::Timing`]) are wall-clock spans.  They
//!   go through an injectable [`Clock`] so that the one real wall-clock
//!   read in the workspace lives in [`clock`] (audited and exempted by
//!   `fec-lint`'s `no-wall-clock` rule); tests inject [`ManualClock`].
//!   Timing values are excluded from determinism and diff gating.
//!
//! The hot decoder loops are generic over [`Recorder`], whose associated
//! `const ENABLED: bool` lets every recording site sit behind an
//! `if R::ENABLED` that the compiler folds away for [`NoopRecorder`]:
//! the un-instrumented entry points monomorphize to exactly the code
//! they compiled to before this crate existed (the kernels bench gates
//! this).
//!
//! [`SimulationEngine`]: ../fec_channel/struct.SimulationEngine.html

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod clock;
pub mod metrics;
pub mod recorder;
pub mod report;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Class, Histogram, Metric, MetricValue, Registry, TimingStat};
pub use recorder::{NoopRecorder, Recorder};
pub use report::render_report;
