//! Metric primitives: counters, gauges, fixed-bucket histograms, timing
//! aggregates, and the [`Registry`] that holds them.
//!
//! Everything in this module is plain deterministic data: a `BTreeMap`
//! keyed by metric name (stable iteration order), `u64` arithmetic, and
//! a **commutative, associative** [`Registry::merge`] so that per-shard
//! registries produced by pool workers can be folded in completion
//! order while still yielding bit-identical count metrics.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default bucket upper bounds for iteration-count style histograms.
///
/// Chosen for decoder iteration counts: dense at the low end (most
/// frames converge in a handful of iterations), sparse toward the
/// configured maxima (typically 10–30 in this workspace).
pub const ITER_BUCKETS: &[u64] = &[1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64];

/// Determinism class of a metric — governs export section and gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Deterministic: bit-identical at any worker count × batch size for
    /// a fixed seed, exactly like error counts.  Byte-compared by the
    /// determinism tests via [`Registry::render_counts`].
    Count,
    /// Schedule-dependent: per-worker totals, queue high-water marks,
    /// lockstep lane occupancy.  Deterministic only for a fixed
    /// worker/batch configuration.
    Execution,
    /// Wall-clock spans (nanoseconds via an injected clock).  Never
    /// deterministic; excluded from determinism and diff gating.
    Timing,
}

impl Class {
    /// Section name used by the JSON export and the ASCII report.
    pub fn section(self) -> &'static str {
        match self {
            Class::Count => "counts",
            Class::Execution => "execution",
            Class::Timing => "timing_ns",
        }
    }
}

/// Fixed-bucket histogram over `u64` observations.
///
/// Buckets are cumulative-style upper bounds (`value <= bound` lands in
/// that bucket); observations above the last bound land in a dedicated
/// overflow bucket, so the total count is always exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given upper-bound buckets.
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len()],
            overflow: 0,
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        match self.bounds.iter().position(|&b| value <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.total += 1;
        self.sum += value;
    }

    /// Adds another histogram bucketwise.  Panics if bucket layouts
    /// differ — merging histograms of different shapes is a bug, not a
    /// recoverable condition.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge with mismatched bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts, parallel to [`Histogram::bounds`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Stable single-line rendering (`total=.. sum=.. [<=1:3 <=2:9 inf:0]`),
    /// listing every bucket so the text is layout-stable.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = write!(s, "total={} sum={} [", self.total, self.sum);
        for (i, (&b, &c)) in self.bounds.iter().zip(&self.counts).enumerate() {
            if i > 0 {
                s.push(' ');
            }
            let _ = write!(s, "<={b}:{c}");
        }
        let _ = write!(s, " inf:{}]", self.overflow);
        s
    }
}

/// Aggregated timing span: count / total / min / max, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingStat {
    /// Number of recorded spans.
    pub count: u64,
    /// Sum of all span durations, in nanoseconds.
    pub total_ns: u64,
    /// Shortest span (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

impl TimingStat {
    /// An empty aggregate.
    pub fn new() -> Self {
        TimingStat {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one span duration.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another aggregate in (commutative).
    pub fn merge(&mut self, other: &TimingStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Mean span duration in nanoseconds (0 while empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

impl Default for TimingStat {
    fn default() -> Self {
        TimingStat::new()
    }
}

/// The value half of a metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Maximum-tracking gauge (high-water mark).
    Gauge(u64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
    /// Timing aggregate (nanoseconds).
    Timing(TimingStat),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Timing(_) => "timing",
        }
    }
}

/// A classified metric value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Determinism class (export section).
    pub class: Class,
    /// The value itself.
    pub value: MetricValue,
}

/// Name-keyed store of metrics with deterministic iteration order.
///
/// `merge` is commutative and associative over every metric kind
/// (counters add, gauges max, histograms add bucketwise, timing stats
/// fold), so folding per-worker registries in completion order yields
/// the same count metrics as any other order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    metrics: BTreeMap<String, Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Adds `by` to the counter `name`, creating it at zero.
    pub fn incr(&mut self, class: Class, name: &str, by: u64) {
        match self.slot(class, name, || MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += by,
            other => Self::kind_conflict(name, "counter", other),
        }
    }

    /// Raises the gauge `name` to at least `value`.
    pub fn gauge_max(&mut self, class: Class, name: &str, value: u64) {
        match self.slot(class, name, || MetricValue::Gauge(0)) {
            MetricValue::Gauge(v) => *v = (*v).max(value),
            other => Self::kind_conflict(name, "gauge", other),
        }
    }

    /// Records `value` into the histogram `name` (default iteration
    /// buckets).
    pub fn observe(&mut self, class: Class, name: &str, value: u64) {
        self.observe_with_bounds(class, name, value, ITER_BUCKETS);
    }

    /// Records `value` into the histogram `name` with explicit buckets.
    pub fn observe_with_bounds(
        &mut self,
        class: Class,
        name: &str,
        value: u64,
        bounds: &'static [u64],
    ) {
        match self.slot(class, name, || {
            MetricValue::Histogram(Histogram::new(bounds))
        }) {
            MetricValue::Histogram(h) => h.observe(value),
            other => Self::kind_conflict(name, "histogram", other),
        }
    }

    /// Records a span duration (always [`Class::Timing`]).
    pub fn timing(&mut self, name: &str, ns: u64) {
        match self.slot(Class::Timing, name, || {
            MetricValue::Timing(TimingStat::new())
        }) {
            MetricValue::Timing(t) => t.record(ns),
            other => Self::kind_conflict(name, "timing", other),
        }
    }

    /// Folds a pre-aggregated timing stat in.
    pub fn timing_stat(&mut self, name: &str, stat: &TimingStat) {
        if stat.count == 0 {
            return;
        }
        match self.slot(Class::Timing, name, || {
            MetricValue::Timing(TimingStat::new())
        }) {
            MetricValue::Timing(t) => t.merge(stat),
            other => Self::kind_conflict(name, "timing", other),
        }
    }

    fn slot(
        &mut self,
        class: Class,
        name: &str,
        init: impl FnOnce() -> MetricValue,
    ) -> &mut MetricValue {
        if !self.metrics.contains_key(name) {
            self.metrics.insert(
                name.to_string(),
                Metric {
                    class,
                    value: init(),
                },
            );
        }
        let metric = self.metrics.get_mut(name).expect("slot just inserted");
        assert_eq!(
            metric.class, class,
            "metric `{name}` recorded under two determinism classes"
        );
        &mut metric.value
    }

    fn kind_conflict(name: &str, wanted: &str, found: &MetricValue) -> ! {
        panic!(
            "metric `{name}` recorded as {wanted} but already holds a {}",
            found.kind()
        );
    }

    /// Folds `other` into `self` (commutative and associative).
    pub fn merge(&mut self, other: &Registry) {
        for (name, metric) in &other.metrics {
            match &metric.value {
                MetricValue::Counter(v) => self.incr(metric.class, name, *v),
                MetricValue::Gauge(v) => self.gauge_max(metric.class, name, *v),
                MetricValue::Histogram(h) => {
                    match self.slot(metric.class, name, || {
                        MetricValue::Histogram(Histogram::new(h.bounds()))
                    }) {
                        MetricValue::Histogram(mine) => mine.merge(h),
                        other => Self::kind_conflict(name, "histogram", other),
                    }
                }
                MetricValue::Timing(t) => self.timing_stat(name, t),
            }
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Convenience: the value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Stable text rendering of **count-class metrics only** — the
    /// determinism tests byte-compare this across worker/batch
    /// configurations, so it must not include execution or timing data.
    pub fn render_counts(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            if metric.class != Class::Count {
                continue;
            }
            match &metric.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name} max={v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "{name} {}", h.render());
                }
                MetricValue::Timing(_) => unreachable!("timing metrics are never Count-class"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 1, 2, 4, 5, 16, 17, 1000] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 8);
        assert_eq!(h.sum(), 1045);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Registry::new();
        a.incr(Class::Count, "frames", 3);
        a.observe(Class::Count, "iters", 5);
        a.gauge_max(Class::Execution, "hw", 7);
        a.timing("span", 100);

        let mut b = Registry::new();
        b.incr(Class::Count, "frames", 4);
        b.observe(Class::Count, "iters", 2);
        b.gauge_max(Class::Execution, "hw", 3);
        b.timing("span", 50);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("frames"), Some(7));
    }

    #[test]
    fn render_counts_excludes_execution_and_timing() {
        let mut r = Registry::new();
        r.incr(Class::Count, "frames", 1);
        r.gauge_max(Class::Execution, "hw", 9);
        r.timing("span", 42);
        let text = r.render_counts();
        assert!(text.contains("frames 1"));
        assert!(!text.contains("hw"));
        assert!(!text.contains("span"));
    }

    #[test]
    #[should_panic(expected = "two determinism classes")]
    fn class_conflict_panics() {
        let mut r = Registry::new();
        r.incr(Class::Count, "x", 1);
        r.incr(Class::Execution, "x", 1);
    }
}
