//! Injectable time source for timing spans.
//!
//! This module is the **single audited wall-clock site** in the
//! workspace: `fec-lint`'s `no-wall-clock` rule forbids `Instant` /
//! `SystemTime` everywhere outside `crates/bench` *except this file*.
//! Simulation results must never depend on time, so everything that
//! wants a timestamp takes a `&dyn Clock` — production code injects
//! [`WallClock`], tests inject [`ManualClock`] and stay deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Monotonic nanosecond time source.
///
/// `Sync` so a single instance can be shared across pool workers by
/// reference.
pub trait Clock: Sync {
    /// Nanoseconds since an arbitrary (per-instance) origin.
    fn now_ns(&self) -> u64;
}

impl std::fmt::Debug for dyn Clock + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Clock")
    }
}

/// Real monotonic wall clock, anchored at construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // A u64 of nanoseconds covers ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic test clock advanced by hand.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_deterministically() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(25);
        c.advance(17);
        assert_eq!(c.now_ns(), 42);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }
}
