//! Negative fixture: the canonical workspace header.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub fn widget() -> u32 {
    7
}
