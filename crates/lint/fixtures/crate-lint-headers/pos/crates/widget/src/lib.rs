//! Positive fixture: crate root missing deny(missing_debug_implementations).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn widget() -> u32 {
    7
}
