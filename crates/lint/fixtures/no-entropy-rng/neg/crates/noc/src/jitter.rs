//! Negative fixture: explicitly seeded RNG construction is the contract.

use rand::{Rng, SeedableRng};

pub fn jitter_source(seed: u64) -> u64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.gen()
}
