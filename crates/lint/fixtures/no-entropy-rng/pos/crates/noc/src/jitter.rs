//! Positive fixture: entropy-seeded RNG construction.

pub fn jitter_source() -> u64 {
    let mut rng = StdRng::from_entropy();
    rng.next_u64()
}
