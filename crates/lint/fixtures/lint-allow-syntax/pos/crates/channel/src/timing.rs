//! Positive fixture: a reasonless allow is itself an error and does not
//! suppress the underlying finding.

pub fn elapsed_ns() -> u128 {
    // fec-lint: allow(no-wall-clock)
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
