//! Negative fixture: an allow with a reason suppresses the finding.

pub fn elapsed_ns() -> u128 {
    // fec-lint: allow(no-wall-clock, calibration probe agreed in PR review; result never feeds simulation output)
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
