//! Positive fixture: a HashMap accumulator in a result-producing crate.

use std::collections::HashMap;

pub fn pair_counts(pairs: &[(usize, usize)]) -> usize {
    let mut counts: HashMap<(usize, usize), usize> = HashMap::new();
    for &p in pairs {
        *counts.entry(p).or_insert(0) += 1;
    }
    counts.len()
}
