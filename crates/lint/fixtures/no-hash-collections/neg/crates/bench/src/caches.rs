//! Negative fixture: crates/bench is not result-producing, so hash
//! collections are allowed (e.g. for report keying).

use std::collections::HashMap;

pub fn label_count(labels: &[&str]) -> usize {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for l in labels {
        *seen.entry((*l).to_string()).or_insert(0) += 1;
    }
    seen.len()
}
