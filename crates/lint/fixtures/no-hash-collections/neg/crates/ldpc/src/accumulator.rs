//! Negative fixture: BTreeMap keeps iteration order content-determined.
//! A "HashMap" in a string or comment must not fire either.

use std::collections::BTreeMap;

pub fn pair_counts(pairs: &[(usize, usize)]) -> usize {
    // HashMap would be a hazard here; BTreeMap is the deterministic choice.
    let label = "not a HashMap";
    let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for &p in pairs {
        *counts.entry(p).or_insert(0) += 1;
    }
    counts.len() + label.len()
}
