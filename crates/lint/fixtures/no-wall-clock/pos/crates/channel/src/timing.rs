//! Positive fixture: wall-clock read inside a simulation crate.

pub fn elapsed_ns() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
