//! Positive fixture: a wall-clock read in fec-obs *outside* the audited
//! clock module (`crates/obs/src/clock.rs`) must still fire.

pub fn stamp_ns() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_nanos()
}
