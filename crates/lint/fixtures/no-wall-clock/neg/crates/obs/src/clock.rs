//! Negative fixture: fec-obs's audited clock module is the one place a
//! simulation crate may wrap the wall clock (behind the `Clock` trait).

use std::time::Instant;

pub fn now_ns() -> u128 {
    Instant::now().elapsed().as_nanos()
}
