//! Negative fixture: a fec-svc transport thread carrying the reasoned
//! allow the rule demands of the daemon crate.

pub fn accept_loop() {
    // fec-lint: allow(no-thread-spawn, socket acceptor thread of the daemon transport; decode fan-out still goes through the shared WorkPool)
    std::thread::spawn(|| loop {});
}
