//! Negative fixture: fec-sched owns the one place threads are created.

pub fn run_scoped(n: usize) -> usize {
    let mut total = 0;
    std::thread::scope(|scope| {
        let h = scope.spawn(|| n + 1);
        total = h.join().unwrap();
    });
    total
}
