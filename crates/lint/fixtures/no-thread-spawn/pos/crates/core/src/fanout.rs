//! Positive fixture: ad-hoc thread spawn outside fec-sched.

pub fn fan_out(shards: usize) -> Vec<std::thread::JoinHandle<usize>> {
    (0..shards)
        .map(|i| std::thread::spawn(move || i * 2))
        .collect()
}
