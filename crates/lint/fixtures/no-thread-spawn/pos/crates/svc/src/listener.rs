//! Positive fixture: a daemon transport thread in fec-svc without the
//! required reasoned allow comment — svc spawns are audited per-site, not
//! exempted crate-wide like fec-sched.

pub fn accept_loop() {
    std::thread::spawn(|| loop {});
}
