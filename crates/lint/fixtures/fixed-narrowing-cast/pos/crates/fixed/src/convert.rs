//! Positive fixture: bare narrowing cast outside the audited helpers.

pub fn to_message(wide: i32) -> i16 {
    wide as i16
}
