//! Negative fixture: audited helpers may cast after clamping, and an
//! allow comment with a reason covers an audited call site.

pub fn q_message(lambda: i32, r: i32, lo: i32, hi: i32) -> i16 {
    (lambda - r).clamp(lo, hi) as i16
}

pub fn checked_site(wide: i32) -> i16 {
    // fec-lint: allow(fixed-narrowing-cast, wide is clamped by the caller to the 7-bit lambda range)
    wide as i16
}
