//! Positive fixture: bare i16 addition in the fixed-point datapath.

pub fn lambda_refresh(lambda: i16, r_new: i16) -> i16 {
    lambda + r_new
}
