//! Negative fixture: saturating ops, widened i32 intermediates, usize
//! index arithmetic and test-module fixture arithmetic are all fine.

pub fn lambda_refresh(lambda: i16, r_new: i16) -> i16 {
    lambda.saturating_add(r_new)
}

pub fn widened(lambda: i16, r_new: i16) -> i32 {
    i32::from(lambda) + i32::from(r_new)
}

pub fn index_math(q: &[i16], lanes: usize, j: usize, f: usize) -> i16 {
    q[j * lanes + f]
}

#[cfg(test)]
mod tests {
    #[test]
    fn fixture_arithmetic_is_exempt() {
        let a: i16 = 12000;
        let b: i16 = 3;
        assert_eq!(a + b, 12003);
    }
}
