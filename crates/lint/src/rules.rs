//! The lint rules and the engine that runs them over annotated sources.
//!
//! Each rule is grounded in a repo contract (see README "Invariants &
//! static analysis"):
//!
//! * determinism — fixed seed ⇒ bit-identical error counts at any
//!   `workers × batch` combination, which unordered hash iteration, ad-hoc
//!   threads, wall-clock reads and entropy-seeded RNGs can all silently
//!   break;
//! * fixed-point safety — the quantized datapath is bit-exact only while
//!   every narrowing/arithmetic op is explicitly saturating or audited;
//! * hygiene — every crate root opts into the workspace-wide deny set.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// One finding produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (kebab-case, stable — used in suppression comments).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Static description of a rule, for `--list-rules` and the report header.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable kebab-case name.
    pub name: &'static str,
    /// One-line contract statement.
    pub description: &'static str,
}

/// Crate directories whose outputs feed simulation results; unordered hash
/// iteration there can silently break the fixed-seed reproducibility
/// contract.
pub const RESULT_CRATES: &[&str] = &[
    "ldpc", "turbo", "channel", "sched", "core", "codes", "noc", "mapping", "svc",
];

/// Files forming the audited fixed-point datapath.
pub const FIXED_POINT_FILES: &[&str] = &[
    "crates/ldpc/src/decoder/layered_fixed.rs",
    "crates/ldpc/src/decoder/meu.rs",
];

/// Helper functions whose bodies are the audited saturating primitives: they
/// may use bare casts/arithmetic internally because they clamp at the edge.
/// The `*_saturates`/`*_clips` observability predicates are the read-only
/// twins of those primitives (same widened arithmetic, compare instead of
/// clamp) and are audited with them.
pub const AUDITED_FNS: &[&str] = &[
    "q_message",
    "r_message",
    "lambda_update",
    "scale_magnitude",
    "q_message_lanes",
    "scaled_magnitude_lanes",
    "lambda_update_lanes",
    "q_saturates",
    "r_clips",
    "lambda_saturates",
];

/// Identifiers that construct entropy-seeded RNGs in the real `rand` API;
/// every RNG in this workspace must take an explicit seed.
const ENTROPY_RNG_IDENTS: &[&str] = &[
    "from_entropy",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_os_rng",
    "getrandom",
];

/// All rules, in reporting order.
pub fn all_rules() -> Vec<RuleInfo> {
    vec![
        RuleInfo {
            name: "no-hash-collections",
            description: "HashMap/HashSet are forbidden in result-producing crates \
                          (iteration order is seeded per-process); use BTreeMap/BTreeSet \
                          or a sorted Vec",
        },
        RuleInfo {
            name: "no-thread-spawn",
            description: "thread::spawn/thread::scope are forbidden outside fec-sched; \
                          all fan-out goes through the deterministic WorkPool (fec-svc \
                          transport threads need a reasoned allow, not an exemption)",
        },
        RuleInfo {
            name: "no-wall-clock",
            description: "Instant/SystemTime are forbidden outside crates/bench and \
                          fec-obs's audited clock module (crates/obs/src/clock.rs); \
                          simulation results must not depend on wall-clock time",
        },
        RuleInfo {
            name: "no-entropy-rng",
            description: "entropy-seeded RNG construction is forbidden; every RNG \
                          must take an explicit seed (SeedableRng::seed_from_u64)",
        },
        RuleInfo {
            name: "fixed-bare-arith",
            description: "bare +/-/* (or +=/-=/*=) on explicitly-typed i16/i8 values \
                          in the fixed-point datapath; use saturating_* / widen to i32 \
                          and clamp",
        },
        RuleInfo {
            name: "fixed-narrowing-cast",
            description: "bare `as i16`/`as i8` narrowing cast in the fixed-point \
                          datapath outside the audited helper functions",
        },
        RuleInfo {
            name: "crate-lint-headers",
            description: "every crate root must carry the canonical header: \
                          #![forbid(unsafe_code)], #![deny(missing_debug_implementations)] \
                          and #![warn(missing_docs)] (or deny)",
        },
        RuleInfo {
            name: "lint-allow-syntax",
            description: "a fec-lint allow comment must name a known rule and give a \
                          non-empty reason: // fec-lint: allow(<rule>, <reason>)",
        },
    ]
}

/// Runs every rule over one annotated source file, applying suppressions.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut raw = Vec::new();
    check_hash_collections(file, &mut raw);
    check_thread_spawn(file, &mut raw);
    check_wall_clock(file, &mut raw);
    check_entropy_rng(file, &mut raw);
    check_fixed_point(file, &mut raw);
    check_crate_headers(file, &mut raw);

    // Apply suppressions (only reasons make them effective), then validate
    // the suppression comments themselves.
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !file.is_suppressed(f.rule, f.line))
        .collect();
    check_allow_comments(file, &mut findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

fn push(out: &mut Vec<Finding>, rule: &'static str, file: &SourceFile, t: &Token, msg: String) {
    out.push(Finding {
        rule,
        path: file.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}

fn in_result_crate(file: &SourceFile) -> bool {
    file.crate_dir
        .as_deref()
        .is_some_and(|c| RESULT_CRATES.contains(&c))
}

fn is_fixed_point_file(file: &SourceFile) -> bool {
    file.path.starts_with("crates/fixed/src/") || FIXED_POINT_FILES.contains(&file.path.as_str())
}

/// determinism: no `HashMap`/`HashSet` identifiers in result-producing
/// crates (covers `use` imports, type annotations and constructor paths).
fn check_hash_collections(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_result_crate(file) {
        return;
    }
    for t in file.tokens() {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            push(
                out,
                "no-hash-collections",
                file,
                t,
                format!(
                    "`{}` in result-producing crate `{}`: iteration order is \
                     process-seeded and can silently break the fixed-seed => \
                     bit-identical-counts contract; use BTreeMap/BTreeSet or a \
                     sorted Vec",
                    t.text,
                    file.crate_dir.as_deref().unwrap_or("?"),
                ),
            );
        }
    }
}

/// determinism: no `thread::spawn` / `thread::scope` outside `fec-sched` —
/// all fan-out goes through the deterministic `WorkPool`.
///
/// `fec-svc` is deliberately NOT exempted: its transport layer legitimately
/// needs reader/acceptor threads, but each spawn site must carry a reasoned
/// `// fec-lint: allow(no-thread-spawn, <why this thread is transport, not
/// decode fan-out>)` so every thread in the daemon is individually audited
/// rather than waved through crate-wide.
fn check_thread_spawn(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.crate_dir.as_deref() == Some("sched") {
        return;
    }
    let in_svc = file.crate_dir.as_deref() == Some("svc");
    let toks = file.tokens();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "thread"
            && toks[i + 1].text == "::"
            && (toks[i + 2].text == "spawn" || toks[i + 2].text == "scope")
        {
            let message = if in_svc {
                format!(
                    "`thread::{}` in fec-svc without a reasoned allow: daemon \
                     transport threads (stdio reader, socket acceptor, per-client \
                     readers) are permitted only with an explicit \
                     `// fec-lint: allow(no-thread-spawn, <reason>)` stating that \
                     decode fan-out still goes through the shared WorkPool",
                    toks[i + 2].text
                )
            } else {
                format!(
                    "`thread::{}` outside fec-sched: ad-hoc threads bypass the \
                     WorkPool's index-order merge and its determinism guarantee; \
                     schedule the work as WorkPool tasks instead",
                    toks[i + 2].text
                )
            };
            push(out, "no-thread-spawn", file, &toks[i], message);
        }
    }
}

/// determinism: no `Instant`/`SystemTime` outside `crates/bench` and the
/// single audited wall-clock module of fec-obs.  The exemption is an exact
/// path — `crates/obs/src/clock.rs` is where `WallClock` wraps `Instant`
/// behind the injectable `Clock` trait; wall-clock reads anywhere else in
/// fec-obs (or any other crate) still fire.
fn check_wall_clock(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.crate_dir.as_deref() == Some("bench") || file.path == "crates/obs/src/clock.rs" {
        return;
    }
    for t in file.tokens() {
        if t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            push(
                out,
                "no-wall-clock",
                file,
                t,
                format!(
                    "`{}` outside crates/bench and crates/obs/src/clock.rs: \
                     wall-clock reads make results depend on machine load; \
                     timing belongs in the bench crate or behind fec-obs's \
                     audited Clock trait",
                    t.text
                ),
            );
        }
    }
}

/// determinism: no entropy-seeded RNG construction anywhere.
fn check_entropy_rng(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in file.tokens() {
        if t.kind == TokenKind::Ident && ENTROPY_RNG_IDENTS.contains(&t.text.as_str()) {
            push(
                out,
                "no-entropy-rng",
                file,
                t,
                format!(
                    "`{}` constructs an entropy-seeded RNG: every RNG in this \
                     workspace must take an explicit seed \
                     (SeedableRng::seed_from_u64) so runs are reproducible",
                    t.text
                ),
            );
        }
    }
}

/// fixed-point safety: bare narrowing casts and bare i16/i8 arithmetic in
/// the quantized datapath, outside the audited helpers and test modules.
fn check_fixed_point(file: &SourceFile, out: &mut Vec<Finding>) {
    if !is_fixed_point_file(file) {
        return;
    }
    let toks = file.tokens();
    let audited = |i: usize| -> bool {
        file.enclosing_fn[i]
            .as_deref()
            .is_some_and(|f| AUDITED_FNS.contains(&f))
    };

    // --- fixed-narrowing-cast: `as i16` / `as i8` ---------------------------
    for i in 0..toks.len().saturating_sub(1) {
        if file.in_test[i] || audited(i) {
            continue;
        }
        if toks[i].kind == TokenKind::Ident
            && toks[i].text == "as"
            && toks[i + 1].kind == TokenKind::Ident
            && (toks[i + 1].text == "i16" || toks[i + 1].text == "i8")
        {
            push(
                out,
                "fixed-narrowing-cast",
                file,
                &toks[i],
                format!(
                    "bare `as {}` narrowing cast outside the audited helpers \
                     ({}): truncation silently wraps; clamp to the target range \
                     first or add `// fec-lint: allow(fixed-narrowing-cast, \
                     <why the value is in range>)`",
                    toks[i + 1].text,
                    AUDITED_FNS.join(", "),
                ),
            );
        }
    }

    // --- fixed-bare-arith ---------------------------------------------------
    // Track identifiers explicitly annotated i16/i8 (params, lets, struct
    // fields; `&[i16]`, `Vec<i16>` etc. count — indexing yields the narrow
    // element type).
    let narrow: std::collections::BTreeSet<&str> = {
        let mut set = std::collections::BTreeSet::new();
        for i in 0..toks.len().saturating_sub(2) {
            // Annotations inside #[cfg(test)] must not leak names into the
            // production tracked set (test fixtures reuse parameter names).
            if toks[i].kind != TokenKind::Ident || file.in_test[i] {
                continue;
            }
            if toks[i + 1].text != ":" || toks[i + 1].kind != TokenKind::Punct {
                continue;
            }
            // Scan the annotation until a terminator at angle-depth 0.
            let mut angle = 0i32;
            let mut j = i + 2;
            while let Some(t) = toks.get(j) {
                match (t.kind, t.text.as_str()) {
                    (TokenKind::Punct, "<") => angle += 1,
                    (TokenKind::Punct, ">") => angle -= 1,
                    (TokenKind::Punct, ">>") => angle -= 2,
                    (TokenKind::Punct, "=" | ";" | "{" | "}") => break,
                    // `,`/`)` end the annotation; `(` at depth 0 means we
                    // left it (e.g. `<const B: usize>(…`); a negative angle
                    // depth means the generic list closed over us.
                    (TokenKind::Punct, "," | ")" | "(") if angle <= 0 => break,
                    (TokenKind::Ident, "i16" | "i8") => {
                        set.insert(toks[i].text.as_str());
                        break;
                    }
                    _ => {}
                }
                if angle < 0 || j > i + 24 {
                    break;
                }
                j += 1;
            }
        }
        set
    };

    // An operand resolves to a narrow value when it is a tracked identifier
    // or a tracked identifier indexed with `[...]`.
    let operand_is_narrow_left = |op_idx: usize| -> bool {
        let prev = op_idx.checked_sub(1);
        let Some(p) = prev else { return false };
        match toks[p].kind {
            TokenKind::Ident => narrow.contains(toks[p].text.as_str()),
            TokenKind::Punct if toks[p].text == "]" => {
                let open = file.matching[p];
                if open == usize::MAX || open == 0 {
                    return false;
                }
                let base = &toks[open - 1];
                base.kind == TokenKind::Ident && narrow.contains(base.text.as_str())
            }
            _ => false,
        }
    };
    let operand_is_narrow_right = |op_idx: usize| -> bool {
        toks.get(op_idx + 1).is_some_and(|t| {
            t.kind == TokenKind::Ident
                && narrow.contains(t.text.as_str())
                // `x + lambda.len()` — a following `.` means a method/field
                // result of unknown type, skip.
                && toks.get(op_idx + 2).is_none_or(|n| n.text != ".")
        })
    };
    // Binary (not unary/deref): the token before the operator must end an
    // operand expression.
    let is_binary_position = |op_idx: usize| -> bool {
        op_idx > 0
            && matches!(
                (toks[op_idx - 1].kind, toks[op_idx - 1].text.as_str()),
                (TokenKind::Ident | TokenKind::Number, _) | (TokenKind::Punct, ")" | "]")
            )
    };

    for (i, t) in toks.iter().enumerate() {
        if file.in_test[i] || audited(i) {
            continue;
        }
        if t.kind != TokenKind::Punct {
            continue;
        }
        let op = t.text.as_str();
        let compound = matches!(op, "+=" | "-=" | "*=");
        let plain = matches!(op, "+" | "-" | "*");
        if !(compound || plain) {
            continue;
        }
        if plain && !is_binary_position(i) {
            continue;
        }
        if operand_is_narrow_left(i) || operand_is_narrow_right(i) {
            push(
                out,
                "fixed-bare-arith",
                file,
                t,
                format!(
                    "bare `{op}` on an i16/i8 value in the fixed-point datapath: \
                     overflow wraps in release builds and breaks bit-exactness; \
                     use saturating_add/saturating_sub/saturating_mul, or widen \
                     to i32 and clamp"
                ),
            );
        }
    }
}

/// hygiene: every `crates/<x>/src/lib.rs` must carry the canonical header.
fn check_crate_headers(file: &SourceFile, out: &mut Vec<Finding>) {
    let is_crate_root = file.crate_dir.is_some()
        && file
            .path
            .strip_prefix("crates/")
            .and_then(|p| p.split_once('/'))
            .map(|(_, rest)| rest)
            == Some("src/lib.rs");
    if !is_crate_root {
        return;
    }
    // Collect inner attributes of the form `#![level(lint_name)]`.
    let toks = file.tokens();
    let mut present: Vec<(String, String)> = Vec::new();
    for i in 0..toks.len().saturating_sub(6) {
        if toks[i].text == "#"
            && toks[i + 1].text == "!"
            && toks[i + 2].text == "["
            && toks[i + 3].kind == TokenKind::Ident
            && toks[i + 4].text == "("
            && toks[i + 5].kind == TokenKind::Ident
            && toks[i + 6].text == ")"
        {
            present.push((toks[i + 3].text.clone(), toks[i + 5].text.clone()));
        }
    }
    let has = |level: &[&str], lint: &str| {
        present
            .iter()
            .any(|(l, n)| level.contains(&l.as_str()) && n == lint)
    };
    let anchor = Token {
        kind: TokenKind::Punct,
        text: String::new(),
        line: 1,
        col: 1,
    };
    if !has(&["forbid"], "unsafe_code") {
        push(
            out,
            "crate-lint-headers",
            file,
            &anchor,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
    if !has(&["deny", "forbid"], "missing_debug_implementations") {
        push(
            out,
            "crate-lint-headers",
            file,
            &anchor,
            "crate root is missing `#![deny(missing_debug_implementations)]`".to_string(),
        );
    }
    if !has(&["warn", "deny", "forbid"], "missing_docs") {
        push(
            out,
            "crate-lint-headers",
            file,
            &anchor,
            "crate root is missing `#![warn(missing_docs)]` (or deny)".to_string(),
        );
    }
}

/// Validates the suppression comments themselves: a reasonless or
/// unknown-rule allow is a finding, never a silent no-op.
fn check_allow_comments(file: &SourceFile, out: &mut Vec<Finding>) {
    let known: Vec<&str> = all_rules().iter().map(|r| r.name).collect();
    for s in &file.suppressions {
        if s.rule.is_empty() {
            out.push(Finding {
                rule: "lint-allow-syntax",
                path: file.path.clone(),
                line: s.line,
                col: s.col,
                message: "malformed fec-lint comment: expected \
                          `// fec-lint: allow(<rule>, <reason>)`"
                    .to_string(),
            });
        } else if !known.contains(&s.rule.as_str()) {
            out.push(Finding {
                rule: "lint-allow-syntax",
                path: file.path.clone(),
                line: s.line,
                col: s.col,
                message: format!("fec-lint allow names unknown rule `{}`", s.rule),
            });
        } else if s.reason.is_empty() {
            out.push(Finding {
                rule: "lint-allow-syntax",
                path: file.path.clone(),
                line: s.line,
                col: s.col,
                message: format!(
                    "fec-lint allow({}) has no reason: suppressions must say why \
                     the invariant holds at this site",
                    s.rule
                ),
            });
        }
    }
}
