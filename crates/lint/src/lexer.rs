//! A small, self-contained Rust lexer.
//!
//! The build environment is fully offline, so `syn`/`proc-macro2` are not
//! available; the lint rules instead run over this token stream.  The lexer
//! handles exactly the constructs that would otherwise produce false
//! positives in a naive text scan:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* .. */ */`) — emitted separately so suppression comments can be
//!   parsed without polluting the code token stream;
//! * string literals with escapes, byte strings, raw strings
//!   (`r"…"`, `r#"…"#`, any number of `#`s) — their contents never produce
//!   identifier tokens;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * numeric literals including type suffixes (`1_000i16`, `0xFFu8`,
//!   `1.5e-3f64`) without swallowing range operators (`0..6`);
//! * multi-character operators (`::`, `->`, `+=`, `..=`, …) combined into
//!   single punct tokens so rules can match them directly.
//!
//! Every token and comment carries a 1-based line/column span.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, …).
    Ident,
    /// Lifetime such as `'a` (without a closing quote).
    Lifetime,
    /// Integer or float literal, including any type suffix.
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Punctuation / operator, possibly multi-character (`::`, `+=`).
    Punct,
}

/// One code token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// One comment (line or block) with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based source line where the comment starts.
    pub line: u32,
    /// 1-based source column where the comment starts.
    pub col: u32,
}

/// Result of lexing one source file: code tokens and comments, separately.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [char],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments.
///
/// The lexer is lossy only about whitespace; unterminated strings or block
/// comments simply run to end-of-file rather than erroring, so a malformed
/// file still produces a best-effort stream (rustc itself is the authority
/// on syntax errors).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut cur = Cursor {
        src: &chars,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { text, line, col });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.comments.push(Comment { text, line, col });
            continue;
        }

        // Raw strings / raw byte strings: r"…", r#"…"#, br#"…"#.
        if (c == 'r' || c == 'b') && looks_like_raw_string(&cur) {
            let text = lex_raw_string(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }

        // Byte string b"…" (raw handled above).
        if c == 'b' && cur.peek(1) == Some('"') {
            cur.bump(); // b
            let mut text = String::from("b");
            text.push_str(&lex_quoted(&mut cur, '"'));
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }

        // Identifiers / keywords (after raw-string disambiguation).
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let text = lex_number(&mut cur);
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text,
                line,
                col,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            let text = lex_quoted(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text,
                line,
                col,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            let is_lifetime = match (cur.peek(1), cur.peek(2)) {
                (Some(c1), Some('\'')) if c1 != '\\' => false, // 'a'
                (Some(c1), _) if is_ident_start(c1) => true,   // 'a, 'static
                _ => false,
            };
            if is_lifetime {
                cur.bump(); // '
                let mut text = String::from("'");
                while let Some(ch) = cur.peek(0) {
                    if is_ident_continue(ch) {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                });
            } else {
                let text = lex_quoted(&mut cur, '\'');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text,
                    line,
                    col,
                });
            }
            continue;
        }

        // Multi-char punctuation, longest match first.
        let mut matched = false;
        for p in MULTI_PUNCTS {
            let plen = p.chars().count();
            if (0..plen).all(|i| cur.peek(i) == p.chars().nth(i)) {
                for _ in 0..plen {
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*p).to_string(),
                    line,
                    col,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        // Single-char punctuation (anything else).
        cur.bump();
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }

    out
}

/// True when the cursor sits on `r"`, `r#`, `br"` or `br#` starting a raw
/// (byte) string — as opposed to an identifier like `r` or `broken`.
fn looks_like_raw_string(cur: &Cursor<'_>) -> bool {
    let (first, rest) = match cur.peek(0) {
        Some('r') => ('r', 1),
        Some('b') if cur.peek(1) == Some('r') => ('b', 2),
        _ => return false,
    };
    let _ = first;
    let mut i = rest;
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

/// Consumes a raw string starting at the cursor (`r`/`br` + `#…#` + `"…"`).
fn lex_raw_string(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    // r or br prefix
    while let Some(ch) = cur.peek(0) {
        if ch == 'r' || ch == 'b' {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        text.push('#');
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) == Some('"') {
        text.push('"');
        cur.bump();
    }
    // Body: runs until `"` followed by `hashes` `#`s.
    'body: while let Some(ch) = cur.peek(0) {
        if ch == '"' {
            let closes = (0..hashes).all(|i| cur.peek(1 + i) == Some('#'));
            if closes {
                text.push('"');
                cur.bump();
                for _ in 0..hashes {
                    text.push('#');
                    cur.bump();
                }
                break 'body;
            }
        }
        text.push(ch);
        cur.bump();
    }
    text
}

/// Consumes a quoted literal (string or char) with backslash escapes.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) -> String {
    let mut text = String::new();
    text.push(quote);
    cur.bump(); // opening quote
    while let Some(ch) = cur.peek(0) {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.peek(0) {
                text.push(esc);
                cur.bump();
            }
            continue;
        }
        if ch == quote {
            text.push(ch);
            cur.bump();
            break;
        }
        text.push(ch);
        cur.bump();
    }
    text
}

/// Consumes a numeric literal (int/float, any radix, `_` separators, type
/// suffix) without swallowing a following range operator (`0..6`).
fn lex_number(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    // Radix prefix.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x') | Some('o') | Some('b')) {
        text.push(cur.bump().unwrap());
        text.push(cur.bump().unwrap());
        while let Some(ch) = cur.peek(0) {
            if ch.is_ascii_hexdigit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    } else {
        while let Some(ch) = cur.peek(0) {
            if ch.is_ascii_digit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
        // Fractional part only when '.' is followed by a digit ('0..6' and
        // '1.max(2)' must not consume the dot).
        if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
            text.push('.');
            cur.bump();
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_digit() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
        // Exponent.
        if matches!(cur.peek(0), Some('e') | Some('E')) {
            let sign_ok = match cur.peek(1) {
                Some('+') | Some('-') => cur.peek(2).is_some_and(|d| d.is_ascii_digit()),
                Some(d) => d.is_ascii_digit(),
                None => false,
            };
            if sign_ok {
                text.push(cur.bump().unwrap());
                if matches!(cur.peek(0), Some('+') | Some('-')) {
                    text.push(cur.bump().unwrap());
                }
                while let Some(ch) = cur.peek(0) {
                    if ch.is_ascii_digit() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
            }
        }
    }
    // Type suffix (i16, u8, f64, usize, …).
    while let Some(ch) = cur.peek(0) {
        if is_ident_continue(ch) {
            text.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // a HashMap in a line comment
            /* a HashMap in a /* nested */ block comment */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw "string""#;
            let c = 'H';
            let b = b"HashMap bytes";
        "##;
        let names = idents(src);
        assert!(
            !names.iter().any(|n| n == "HashMap"),
            "no HashMap ident expected, got {names:?}"
        );
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("line comment"));
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'x'"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let lexed = lex(r"let q = '\''; let n = '\n';");
        let lits = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 2);
    }

    #[test]
    fn line_and_column_tracking() {
        let lexed = lex("let a = 1;\n  let bb = 2;");
        let bb = lexed.tokens.iter().find(|t| t.text == "bb").unwrap();
        assert_eq!((bb.line, bb.col), (2, 7));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..6 { let x = 1.5e-3f64 + 0xFFu8 as f64; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "6", "1.5e-3f64", "0xFFu8"]);
        assert!(lexed.tokens.iter().any(|t| t.text == ".."));
    }

    #[test]
    fn multichar_puncts_combine() {
        let lexed = lex("a += b; c::d; e -> f; g ..= h; i << j;");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert!(puncts.contains(&"+=".to_string()));
        assert!(puncts.contains(&"::".to_string()));
        assert!(puncts.contains(&"->".to_string()));
        assert!(puncts.contains(&"..=".to_string()));
        assert!(puncts.contains(&"<<".to_string()));
    }

    #[test]
    fn suffixed_literals_keep_suffix() {
        let lexed = lex("let v = -16000i16;");
        assert!(lexed.tokens.iter().any(|t| t.text == "16000i16"));
    }

    #[test]
    fn raw_identifier_like_r_is_still_ident() {
        // `r` alone and `rows` must not be mistaken for raw-string starts.
        let names = idents("let r = rows + 1;");
        assert_eq!(names, vec!["let", "r", "rows"]);
    }
}
