//! CI entry point: lints the workspace and fails on any finding.
//!
//! ```text
//! cargo run -p fec-lint -- [--root <dir>] [--json <report.json>] [--list-rules]
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--list-rules" => {
                for r in fec_lint::all_rules() {
                    println!("{:24} {}", r.name, r.description);
                }
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match fec_lint::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fec-lint: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = json_path {
        let text = report.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("fec-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("fec-lint: wrote {}", path.display());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("fec-lint: {err}");
    eprintln!("usage: fec-lint [--root <dir>] [--json <report.json>] [--list-rules]");
    ExitCode::from(2)
}
