//! Machine-readable report (via `fec-json`) and human-readable rendering.

use crate::rules::{all_rules, Finding};
use fec_json::Json;

/// Outcome of linting a workspace root.
#[derive(Debug, Clone)]
pub struct Report {
    /// Root the walk started from (as given).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted by path, then line/col.
    pub findings: Vec<Finding>,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the JSON report uploaded as a CI artifact.
    pub fn to_json(&self) -> Json {
        let rules = Json::arr(all_rules().iter().map(|r| {
            Json::obj([
                ("name", Json::str(r.name)),
                ("description", Json::str(r.description)),
            ])
        }));
        let findings = Json::arr(self.findings.iter().map(|f| {
            Json::obj([
                ("rule", Json::str(f.rule)),
                ("path", Json::str(&f.path)),
                ("line", Json::UInt(f.line.into())),
                ("col", Json::UInt(f.col.into())),
                ("message", Json::str(&f.message)),
            ])
        }));
        Json::obj([
            ("tool", Json::str("fec-lint")),
            ("root", Json::str(&self.root)),
            ("files_scanned", Json::UInt(self.files_scanned as u64)),
            ("clean", Json::Bool(self.is_clean())),
            ("rules", rules),
            ("findings", findings),
        ])
    }

    /// Renders the human-readable finding list (one line per finding, in
    /// `path:line:col: [rule] message` form), plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                f.path, f.line, f.col, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "fec-lint: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        ));
        out
    }
}
