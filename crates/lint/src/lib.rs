//! `fec-lint` — the workspace's in-repo static-analysis pass.
//!
//! Two contracts carry the whole value of this reproduction: fixed seed ⇒
//! bit-identical error counts at any `workers × batch` combination, and the
//! fixed-point datapath's bit-exactness, which holds only while every
//! narrowing/arithmetic op is explicitly saturating.  Example-based tests
//! catch violations of either only probabilistically; this crate checks the
//! underlying invariants mechanically on every PR, over every workspace
//! `.rs` source.
//!
//! The build environment is offline (no `syn`), so the pass runs on the
//! small hand-rolled lexer in [`lexer`] (strings, raw strings, char
//! literals, nested block comments, line/col tracking) and the token-level
//! rule engine in [`rules`].  Findings can be suppressed per-site with
//!
//! ```text
//! // fec-lint: allow(<rule>, <reason>)
//! ```
//!
//! where the reason is mandatory — a reasonless allow is itself a finding.
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p fec-lint -- [--root <dir>] [--json <report.json>]
//! ```
//!
//! Exit code 0 = clean, 1 = findings, 2 = usage/IO error.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use report::Report;
pub use rules::{all_rules, check_file, Finding, RuleInfo};
pub use source::SourceFile;

use std::fs;
use std::path::{Path, PathBuf};

/// Directories (by final component) that are never walked: build output,
/// VCS metadata and the lint crate's own violation fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Top-level directories holding workspace Rust sources.
const SOURCE_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Lints a single in-memory source under a workspace-relative path.
///
/// This is the unit the fixture self-tests drive; [`lint_root`] is the
/// filesystem wrapper around it.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::parse(rel_path, src);
    check_file(&file)
}

/// Walks `root` (a workspace checkout or a fixture mini-tree) and lints
/// every `.rs` file under its `crates/`, `tests/` and `examples/`
/// directories, in sorted path order.
///
/// # Errors
///
/// Returns an error string when a directory or file cannot be read.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for top in SOURCE_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let src = fs::read_to_string(path)
            .map_err(|e| format!("failed to read {}: {e}", path.display()))?;
        let rel = relative_slash_path(root, path);
        findings.extend(lint_source(&rel, &src));
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(Report {
        root: root.display().to_string(),
        files_scanned: files.len(),
        findings,
    })
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to read dir entry: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders `path` relative to `root` with `/` separators regardless of
/// platform, so rule scoping and reports are stable.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_paths_use_forward_slashes() {
        let root = Path::new("/tmp/ws");
        let p = root.join("crates").join("ldpc").join("src").join("x.rs");
        assert_eq!(relative_slash_path(root, &p), "crates/ldpc/src/x.rs");
    }

    #[test]
    fn lint_source_is_clean_on_trivial_input() {
        let f = lint_source("crates/ldpc/src/ok.rs", "pub fn f() -> u32 { 1 + 1 }");
        assert!(f.is_empty(), "{f:?}");
    }
}
