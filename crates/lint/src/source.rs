//! Per-file analysis context: lexed tokens plus the structural annotations
//! the rules need — brace depth, enclosing-function names, `#[cfg(test)]`
//! regions, bracket matching and parsed suppression comments.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// A parsed `// fec-lint: allow(<rule>, <reason>)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// Reason text after the comma (trimmed); empty when missing.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
}

/// One workspace source file, lexed and annotated, ready for rules.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g.
    /// `crates/ldpc/src/sparse.rs`).
    pub path: String,
    /// Crate directory name under `crates/` (e.g. `ldpc`), or `None` for
    /// top-level `tests/` and `examples/` sources.
    pub crate_dir: Option<String>,
    /// Lexed tokens and comments.
    pub lexed: Lexed,
    /// Per-token brace depth *before* the token is applied (so an opening
    /// `{` carries the depth outside the block it opens).
    pub depth: Vec<u32>,
    /// Per-token name of the innermost enclosing `fn`, if any.
    pub enclosing_fn: Vec<Option<String>>,
    /// Per-token flag: inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
    /// For each `[`/`(`/`{` token index, the index of its matching closer
    /// (and vice versa); `usize::MAX` when unmatched.
    pub matching: Vec<usize>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes and annotates `src` under the given workspace-relative path.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let crate_dir = crate_dir_of(path);
        let n = lexed.tokens.len();

        let mut depth = vec![0u32; n];
        let mut matching = vec![usize::MAX; n];
        let mut enclosing_fn: Vec<Option<String>> = vec![None; n];
        let mut in_test = vec![false; n];

        // Bracket matching + brace depth.
        let mut stack: Vec<usize> = Vec::new();
        let mut d = 0u32;
        for (i, t) in lexed.tokens.iter().enumerate() {
            depth[i] = d;
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "{" => {
                        d += 1;
                        stack.push(i);
                    }
                    "(" | "[" => stack.push(i),
                    "}" | ")" | "]" => {
                        d = d.saturating_sub(u32::from(t.text == "}"));
                        depth[i] = d; // closer sits at the outer depth
                        if let Some(open) = stack.pop() {
                            matching[open] = i;
                            matching[i] = open;
                        }
                    }
                    _ => {}
                }
            }
        }

        // Enclosing functions: `fn <name> … {` regions (by matched braces).
        // A `fn` keyword in type position (`fn(i32) -> i32`) is not followed
        // by an identifier, so it never opens a region.
        let mut fn_regions: Vec<(usize, usize, String)> = Vec::new();
        for (i, t) in lexed.tokens.iter().enumerate() {
            if t.kind == TokenKind::Ident && t.text == "fn" {
                let Some(name_tok) = lexed.tokens.get(i + 1) else {
                    continue;
                };
                if name_tok.kind != TokenKind::Ident {
                    continue;
                }
                // Find the body's opening brace: the first `{` at the depth
                // the `fn` keyword sits at (skips `{` inside const generics
                // or where-clause bounds, which stay bracket-balanced).
                let fn_depth = depth[i];
                let mut j = i + 2;
                while j < n {
                    let tj = &lexed.tokens[j];
                    if tj.kind == TokenKind::Punct {
                        match tj.text.as_str() {
                            ";" if depth[j] == fn_depth => break, // trait decl
                            "{" if depth[j] == fn_depth => {
                                let close = matching[j];
                                if close != usize::MAX {
                                    fn_regions.push((j, close, name_tok.text.clone()));
                                }
                                break;
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
            }
        }
        // Innermost region wins: apply outer regions first (they are pushed
        // in source order, and an inner fn starts later), overwriting.
        for (open, close, name) in &fn_regions {
            for slot in enclosing_fn
                .iter_mut()
                .take(close.saturating_add(1))
                .skip(*open)
            {
                *slot = Some(name.clone());
            }
        }

        // `#[cfg(test)]` regions: from the attribute to the end of the item
        // it gates (the matching `}` of the next `{` at the attribute's
        // depth) — covers `#[cfg(test)] mod tests { … }` and gated fns.
        let mut i = 0usize;
        while i < n {
            if is_cfg_test_attr(&lexed.tokens, i) {
                let attr_depth = depth[i];
                let mut j = i;
                let mut end = n;
                while j < n {
                    let tj = &lexed.tokens[j];
                    if tj.kind == TokenKind::Punct && tj.text == "{" && depth[j] == attr_depth {
                        if matching[j] != usize::MAX {
                            end = matching[j] + 1;
                        }
                        break;
                    }
                    if tj.kind == TokenKind::Punct && tj.text == ";" && depth[j] == attr_depth {
                        end = j + 1; // `#[cfg(test)] mod tests;`
                        break;
                    }
                    j += 1;
                }
                for slot in in_test.iter_mut().take(end).skip(i) {
                    *slot = true;
                }
            }
            i += 1;
        }

        let suppressions = parse_suppressions(&lexed.comments);

        SourceFile {
            path: path.to_string(),
            crate_dir,
            lexed,
            depth,
            enclosing_fn,
            in_test,
            matching,
            suppressions,
        }
    }

    /// The code tokens.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }

    /// The comments.
    pub fn comments(&self) -> &[Comment] {
        &self.lexed.comments
    }

    /// True when a suppression for `rule` covers `line` (the comment's own
    /// line or the line directly below it) *and* carries a reason.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            s.rule == rule && !s.reason.is_empty() && (s.line == line || s.line + 1 == line)
        })
    }
}

/// Extracts the crate directory name from a workspace-relative path.
fn crate_dir_of(path: &str) -> Option<String> {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().map(str::to_string)
    } else {
        None
    }
}

/// True when tokens starting at `i` spell `#[cfg(test)]` (possibly with
/// extra args such as `#[cfg(all(test, feature = "x"))]` — any `cfg`
/// attribute mentioning `test` counts).
fn is_cfg_test_attr(tokens: &[Token], i: usize) -> bool {
    let txt = |k: usize| tokens.get(i + k).map(|t| t.text.as_str());
    if txt(0) != Some("#") || txt(1) != Some("[") || txt(2) != Some("cfg") || txt(3) != Some("(") {
        return false;
    }
    // Scan to the closing `]` looking for a bare `test` ident.
    let mut k = i + 4;
    while let Some(t) = tokens.get(k) {
        if t.kind == TokenKind::Punct && t.text == "]" {
            return false;
        }
        if t.kind == TokenKind::Ident && t.text == "test" {
            return true;
        }
        k += 1;
        if k > i + 32 {
            return false;
        }
    }
    false
}

/// Parses `fec-lint: allow(rule, reason)` out of the comment stream.
///
/// Only plain comments (`//`, `/*`) are considered: doc comments (`///`,
/// `//!`, `/**`, `/*!`) are rendered documentation, which may legitimately
/// *describe* the suppression syntax without invoking it.
///
/// A malformed marker (missing `allow(`, unclosed paren) is recorded with an
/// empty rule name so the engine can flag it rather than silently ignore it.
fn parse_suppressions(comments: &[Comment]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in comments {
        let is_doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if is_doc {
            continue;
        }
        let Some(marker) = c.text.find("fec-lint:") else {
            continue;
        };
        let rest = c.text[marker + "fec-lint:".len()..].trim_start();
        let (rule, reason) = match rest.strip_prefix("allow(") {
            Some(body) => match body.find(')') {
                Some(close) => {
                    let inner = &body[..close];
                    match inner.split_once(',') {
                        Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                        None => (inner.trim().to_string(), String::new()),
                    }
                }
                None => (String::new(), String::new()),
            },
            None => (String::new(), String::new()),
        };
        out.push(Suppression {
            rule,
            reason,
            line: c.line,
            col: c.col,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_extraction() {
        assert_eq!(
            crate_dir_of("crates/ldpc/src/sparse.rs"),
            Some("ldpc".to_string())
        );
        assert_eq!(crate_dir_of("tests/integration_engine.rs"), None);
    }

    #[test]
    fn enclosing_fn_tracking() {
        let src = "fn outer() { let a = 1; } fn inner_host() { fn inner() { let b = 2; } }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let tok_a = f.tokens().iter().position(|t| t.text == "a").unwrap();
        let tok_b = f.tokens().iter().position(|t| t.text == "b").unwrap();
        assert_eq!(f.enclosing_fn[tok_a].as_deref(), Some("outer"));
        assert_eq!(f.enclosing_fn[tok_b].as_deref(), Some("inner"));
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "pub fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let x = 1; }\n}\nfn after() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let tok_x = f.tokens().iter().position(|t| t.text == "x").unwrap();
        let tok_prod = f.tokens().iter().position(|t| t.text == "prod").unwrap();
        let tok_after = f.tokens().iter().position(|t| t.text == "after").unwrap();
        assert!(f.in_test[tok_x]);
        assert!(!f.in_test[tok_prod]);
        assert!(!f.in_test[tok_after]);
    }

    #[test]
    fn suppression_parsing_and_matching() {
        let src = "// fec-lint: allow(no-wall-clock, bench timing is the point)\nlet t = 1;\n// fec-lint: allow(no-wall-clock)\nlet u = 2;";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.suppressions.len(), 2);
        assert!(f.is_suppressed("no-wall-clock", 1));
        assert!(f.is_suppressed("no-wall-clock", 2));
        // Reasonless allow never suppresses.
        assert!(!f.is_suppressed("no-wall-clock", 3));
        assert!(!f.is_suppressed("no-wall-clock", 4));
        assert_eq!(f.suppressions[1].reason, "");
    }

    #[test]
    fn bracket_matching() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "let a = b[c + d];");
        let open = f.tokens().iter().position(|t| t.text == "[").unwrap();
        let close = f.tokens().iter().position(|t| t.text == "]").unwrap();
        assert_eq!(f.matching[open], close);
        assert_eq!(f.matching[close], open);
    }
}
