//! Fixture-based self-tests: one positive (must fire, with exact line/col)
//! and one negative (must not fire) mini workspace tree per rule, plus the
//! suppression-comment contract and a workspace-at-HEAD cleanliness gate.

use std::path::{Path, PathBuf};

use fec_lint::{lint_root, Finding};

fn fixture(rule: &str, variant: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rule)
        .join(variant)
}

fn findings(rule: &str, variant: &str) -> Vec<Finding> {
    let root = fixture(rule, variant);
    lint_root(&root)
        .unwrap_or_else(|e| panic!("lint_root({}) failed: {e}", root.display()))
        .findings
}

/// Asserts the positive fixture fires exactly `expected` `(rule, path,
/// line, col)` findings and the negative fixture is fully clean.
fn check_rule(rule: &str, expected: &[(&str, &str, u32, u32)]) {
    let pos = findings(rule, "pos");
    let got: Vec<(&str, &str, u32, u32)> = pos
        .iter()
        .map(|f| (f.rule, f.path.as_str(), f.line, f.col))
        .collect();
    assert_eq!(got, expected, "positive fixture for `{rule}`: {pos:#?}");

    let neg = findings(rule, "neg");
    assert!(
        neg.is_empty(),
        "negative fixture for `{rule}` must be clean, got {neg:#?}"
    );
}

#[test]
fn no_hash_collections_fixtures() {
    // The import and both halves of the type annotation each fire; the
    // BTreeMap rewrite (plus a bench-crate HashMap) is clean.
    check_rule(
        "no-hash-collections",
        &[
            (
                "no-hash-collections",
                "crates/ldpc/src/accumulator.rs",
                3,
                23,
            ),
            (
                "no-hash-collections",
                "crates/ldpc/src/accumulator.rs",
                6,
                21,
            ),
            (
                "no-hash-collections",
                "crates/ldpc/src/accumulator.rs",
                6,
                54,
            ),
        ],
    );
}

#[test]
fn no_thread_spawn_fixtures() {
    // Two positives: an ad-hoc spawn in an ordinary crate, and a bare
    // transport thread in fec-svc (which is NOT exempted like fec-sched —
    // each svc spawn site needs a reasoned allow, see the neg tree).
    check_rule(
        "no-thread-spawn",
        &[
            ("no-thread-spawn", "crates/core/src/fanout.rs", 5, 23),
            ("no-thread-spawn", "crates/svc/src/listener.rs", 6, 10),
        ],
    );
    let svc_finding = findings("no-thread-spawn", "pos")
        .into_iter()
        .find(|f| f.path == "crates/svc/src/listener.rs")
        .expect("svc positive fires");
    assert!(
        svc_finding.message.contains("without a reasoned allow"),
        "svc gets the per-site-audit message, got: {}",
        svc_finding.message
    );
}

#[test]
fn no_wall_clock_fixtures() {
    // Two positives: a wall-clock read in a simulation crate, and one in
    // fec-obs *outside* the audited clock module.  The negative tree holds
    // the two legitimate homes: crates/bench and crates/obs/src/clock.rs.
    check_rule(
        "no-wall-clock",
        &[
            ("no-wall-clock", "crates/channel/src/timing.rs", 4, 25),
            ("no-wall-clock", "crates/obs/src/recorder.rs", 5, 25),
        ],
    );
}

#[test]
fn no_entropy_rng_fixtures() {
    check_rule(
        "no-entropy-rng",
        &[("no-entropy-rng", "crates/noc/src/jitter.rs", 4, 27)],
    );
}

#[test]
fn fixed_bare_arith_fixtures() {
    check_rule(
        "fixed-bare-arith",
        &[("fixed-bare-arith", "crates/fixed/src/update.rs", 4, 12)],
    );
}

#[test]
fn fixed_narrowing_cast_fixtures() {
    check_rule(
        "fixed-narrowing-cast",
        &[("fixed-narrowing-cast", "crates/fixed/src/convert.rs", 4, 10)],
    );
}

#[test]
fn crate_lint_headers_fixtures() {
    let pos = findings("crate-lint-headers", "pos");
    assert_eq!(pos.len(), 1, "{pos:#?}");
    assert_eq!(
        (pos[0].rule, pos[0].path.as_str(), pos[0].line, pos[0].col),
        ("crate-lint-headers", "crates/widget/src/lib.rs", 1, 1)
    );
    assert!(
        pos[0].message.contains("missing_debug_implementations"),
        "finding must name the missing attribute: {}",
        pos[0].message
    );
    assert!(findings("crate-lint-headers", "neg").is_empty());
}

#[test]
fn reasonless_allow_is_an_error_and_does_not_suppress() {
    // The positive fixture carries a reasonless `allow(no-wall-clock)`
    // suppression comment directly above an Instant::now(): the allow
    // itself is flagged AND the wall-clock finding still comes through.
    let pos = findings("lint-allow-syntax", "pos");
    let got: Vec<(&str, u32, u32)> = pos.iter().map(|f| (f.rule, f.line, f.col)).collect();
    assert_eq!(
        got,
        vec![("lint-allow-syntax", 5, 5), ("no-wall-clock", 6, 25)],
        "{pos:#?}"
    );
    // With a reason, the same site is silent.
    assert!(findings("lint-allow-syntax", "neg").is_empty());
}

#[test]
fn workspace_at_head_is_clean() {
    // The acceptance contract: `cargo run -p fec-lint` exits zero on the
    // full workspace.  Running it here means any PR that introduces a
    // violation fails `cargo test` too, not just the dedicated CI job.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_root(&root).expect("linting the workspace must not error");
    assert!(report.files_scanned > 100, "walker found too few files");
    assert!(
        report.is_clean(),
        "workspace must be fec-lint clean:\n{}",
        report.render_text()
    );
}
