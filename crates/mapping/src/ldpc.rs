//! Mapping of LDPC check nodes onto NoC nodes and construction of the
//! equivalent interleaver.

use crate::partition::{Partition, Partitioner, PartitionerConfig};
use crate::{MappingConfig, MappingQuality, WeightedGraph};
use noc_sim::{Message, TrafficTrace};
use wimax_ldpc::{QcLdpcCode, TannerGraph};

/// A mapping of the check rows of one LDPC code onto `P` processing elements,
/// together with the equivalent interleaver (the traffic of one layered
/// decoding iteration).
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct LdpcMapping {
    pes: usize,
    partition: Partition,
    trace: TrafficTrace,
    quality: MappingQuality,
}

impl LdpcMapping {
    /// Maps `code` onto `pes` processing elements.
    ///
    /// Several partitioning candidates are generated (see
    /// [`MappingConfig::candidates`]) and the one with the lowest cost
    /// (remote traffic, then imbalance) is kept, mirroring the candidate
    /// selection loop of the paper's flow.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero or exceeds the number of check rows.
    pub fn new(code: &QcLdpcCode, pes: usize, config: MappingConfig) -> Self {
        assert!(pes >= 1, "need at least one PE");
        assert!(
            pes <= code.m(),
            "cannot map {} check rows onto {pes} PEs",
            code.m()
        );
        let graph = Self::row_graph(code);
        let mut best: Option<LdpcMapping> = None;
        for candidate in 0..config.candidates.max(1) {
            let pconf = PartitionerConfig {
                refinement_passes: config.refinement_passes,
                balance_slack: 1,
                seed: config.seed.wrapping_add(candidate as u64 * 7919),
            };
            let partition = Partitioner::new(pconf).partition(&graph, pes);
            let (trace, quality) = Self::build_traffic(code, &partition, pes);
            let current = LdpcMapping {
                pes,
                partition,
                trace,
                quality,
            };
            let better = match &best {
                None => true,
                Some(b) => current.quality.cost() < b.quality.cost(),
            };
            if better {
                best = Some(current);
            }
        }
        best.expect("at least one candidate is generated")
    }

    /// The weighted row-adjacency graph of the code under layered scheduling.
    pub fn row_graph(code: &QcLdpcCode) -> WeightedGraph {
        let tanner = TannerGraph::from_code(code);
        WeightedGraph::from_adjacency(
            tanner
                .weighted_row_adjacency()
                .into_iter()
                .map(|neigh| neigh.into_iter().map(|(v, w)| (v, w as u64)).collect())
                .collect(),
        )
    }

    fn build_traffic(
        code: &QcLdpcCode,
        partition: &Partition,
        pes: usize,
    ) -> (TrafficTrace, MappingQuality) {
        let h = code.parity_check();
        let m = code.m();
        let cols = h.column_lists();

        // For every H entry (row, col): after processing `row`, the updated
        // bit LLR of `col` must reach the PE owning the *next* row (in the
        // layered schedule, i.e. natural row order, cyclically) that also
        // contains `col`.
        let mut per_source: Vec<Vec<Message>> = vec![Vec::new(); pes];
        let mut sequence = vec![0usize; pes];
        let mut remote = 0usize;
        for row in 0..m {
            let src = partition.part_of(row);
            for &col in h.row(row) {
                let rows_of_col = &cols[col];
                let pos = rows_of_col
                    .binary_search(&row)
                    .expect("entry must be present in its own column list");
                let next_row = rows_of_col[(pos + 1) % rows_of_col.len()];
                let dst = partition.part_of(next_row);
                if src != dst {
                    remote += 1;
                }
                let seq = sequence[src];
                sequence[src] += 1;
                per_source[src].push(Message::new(src, dst, col, seq));
            }
        }

        let counts: Vec<usize> = per_source.iter().map(|v| v.len()).collect();
        let total: usize = counts.iter().sum();
        let quality = MappingQuality {
            pes,
            total_messages: total,
            remote_messages: remote,
            max_per_pe: counts.iter().copied().max().unwrap_or(0),
            min_per_pe: counts.iter().copied().min().unwrap_or(0),
            edge_cut: Self::row_graph(code).edge_cut(partition.assignment()),
        };
        (TrafficTrace::new(per_source), quality)
    }

    /// Number of PEs.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// The check-row partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The equivalent interleaver: the traffic of one layered iteration.
    pub fn traffic_trace(&self) -> &TrafficTrace {
        &self.trace
    }

    /// Quality metrics of the selected candidate.
    pub fn quality(&self) -> MappingQuality {
        self.quality
    }

    /// The check rows assigned to a given PE, in schedule order.
    pub fn rows_of(&self, pe: usize) -> Vec<usize> {
        self.partition
            .assignment()
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == pe)
            .map(|(row, _)| row)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimax_ldpc::CodeRate;

    fn small_code() -> QcLdpcCode {
        QcLdpcCode::wimax(576, CodeRate::R12).unwrap()
    }

    #[test]
    fn one_message_per_parity_check_entry() {
        let code = small_code();
        let mapping = LdpcMapping::new(&code, 8, MappingConfig::default());
        assert_eq!(mapping.traffic_trace().total_messages(), code.edge_count());
        assert_eq!(mapping.quality().total_messages, code.edge_count());
    }

    #[test]
    fn every_row_is_assigned_and_balanced() {
        let code = small_code();
        let mapping = LdpcMapping::new(&code, 12, MappingConfig::default());
        let mut covered = 0;
        for pe in 0..12 {
            covered += mapping.rows_of(pe).len();
        }
        assert_eq!(covered, code.m());
        assert!(mapping.quality().balance_ratio() < 1.3);
    }

    #[test]
    fn partitioned_mapping_keeps_some_traffic_local() {
        let code = small_code();
        let mapping = LdpcMapping::new(&code, 16, MappingConfig::default());
        let q = mapping.quality();
        // a random assignment would have locality ~ 1/16 = 6%; the partitioner
        // must do significantly better.
        assert!(
            q.locality() > 0.15,
            "locality {:.3} too low (cut {})",
            q.locality(),
            q.edge_cut
        );
    }

    #[test]
    fn destinations_stay_within_the_pe_range() {
        let code = small_code();
        let pes = 22;
        let mapping = LdpcMapping::new(&code, pes, MappingConfig::default());
        assert!(mapping.traffic_trace().max_destination().unwrap() < pes);
    }

    #[test]
    fn message_locations_are_column_indices() {
        let code = small_code();
        let mapping = LdpcMapping::new(&code, 4, MappingConfig::default());
        for pe in 0..4 {
            for msg in mapping.traffic_trace().messages(pe) {
                assert!(msg.location < code.n());
            }
        }
    }

    #[test]
    fn more_pes_means_more_remote_traffic() {
        let code = small_code();
        let small = LdpcMapping::new(&code, 4, MappingConfig::default());
        let large = LdpcMapping::new(&code, 32, MappingConfig::default());
        assert!(large.quality().remote_messages > small.quality().remote_messages);
    }

    #[test]
    fn candidate_selection_prefers_lower_cost() {
        let code = small_code();
        let single = MappingConfig {
            candidates: 1,
            ..MappingConfig::default()
        };
        let multi = MappingConfig {
            candidates: 4,
            ..MappingConfig::default()
        };
        let a = LdpcMapping::new(&code, 16, single);
        let b = LdpcMapping::new(&code, 16, multi);
        assert!(b.quality().cost() <= a.quality().cost());
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let code = small_code();
        let _ = LdpcMapping::new(&code, 0, MappingConfig::default());
    }

    #[test]
    fn single_pe_has_no_remote_traffic() {
        let code = small_code();
        let mapping = LdpcMapping::new(&code, 1, MappingConfig::default());
        assert_eq!(mapping.quality().remote_messages, 0);
        assert_eq!(mapping.quality().locality(), 1.0);
    }
}
