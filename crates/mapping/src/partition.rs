//! Balanced graph partitioning: the role played by the Metis bundle in the
//! paper's mapping flow.
//!
//! The partitioner combines greedy region growing (seeds spread across the
//! graph, grown breadth-first in round-robin so that every part reaches the
//! same size) with a Kernighan–Lin-style refinement that moves boundary nodes
//! between parts whenever this reduces the edge cut without violating the
//! balance constraint.

use crate::graph::WeightedGraph;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Configuration of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionerConfig {
    /// Number of refinement passes.
    pub refinement_passes: usize,
    /// Allowed imbalance: a part may hold at most
    /// `ceil(nodes / parts) + slack` nodes.
    pub balance_slack: usize,
    /// RNG seed for seed-node selection.
    pub seed: u64,
}

impl Default for PartitionerConfig {
    fn default() -> Self {
        PartitionerConfig {
            refinement_passes: 8,
            balance_slack: 1,
            seed: 1,
        }
    }
}

/// The result of partitioning a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<usize>,
    parts: usize,
}

impl Partition {
    /// Creates a partition from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any assignment is `>= parts`.
    pub fn new(assignment: Vec<usize>, parts: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| p < parts),
            "assignment references a part out of range"
        );
        Partition { assignment, parts }
    }

    /// The part of node `u`.
    pub fn part_of(&self, u: usize) -> usize {
        self.assignment[u]
    }

    /// The raw assignment vector.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of nodes in each part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0; self.parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// Largest part size divided by the ideal size; 1.0 means perfect balance.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignment.len() as f64 / self.parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// Balanced low-edge-cut graph partitioner.
///
/// # Example
///
/// ```
/// use noc_mapping::{Partitioner, PartitionerConfig, WeightedGraph};
///
/// // a ring of 12 nodes split over 4 parts
/// let mut g = WeightedGraph::new(12);
/// for i in 0..12 {
///     g.add_edge(i, (i + 1) % 12, 1);
/// }
/// let partition = Partitioner::new(PartitionerConfig::default()).partition(&g, 4);
/// assert_eq!(partition.parts(), 4);
/// assert!(partition.imbalance() <= 1.5);
/// // a ring cut into 4 contiguous arcs has cut 4; allow a little slack
/// assert!(g.edge_cut(partition.assignment()) <= 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partitioner {
    config: PartitionerConfig,
}

impl Partitioner {
    /// Creates a partitioner.
    pub fn new(config: PartitionerConfig) -> Self {
        Partitioner { config }
    }

    /// Partitions `graph` into `parts` balanced parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or larger than the number of nodes.
    pub fn partition(&self, graph: &WeightedGraph, parts: usize) -> Partition {
        let n = graph.len();
        assert!(parts >= 1, "need at least one part");
        assert!(parts <= n, "cannot split {n} nodes into {parts} parts");
        if parts == 1 {
            return Partition::new(vec![0; n], 1);
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let assignment = self.grow_regions(graph, parts, &mut rng);
        let assignment = self.refine(graph, assignment, parts);
        Partition::new(assignment, parts)
    }

    /// Greedy region growing: pick spread-out seeds, then grow each part
    /// breadth-first in round-robin until every node is assigned.
    fn grow_regions(&self, graph: &WeightedGraph, parts: usize, rng: &mut impl Rng) -> Vec<usize> {
        let n = graph.len();
        let target = n.div_ceil(parts);
        let mut assignment = vec![usize::MAX; n];
        let mut sizes = vec![0usize; parts];

        // choose seeds: first seed random, others maximize BFS distance to chosen seeds
        let mut seeds = Vec::with_capacity(parts);
        let first = rng.gen_range(0..n);
        seeds.push(first);
        let mut dist_to_seeds = bfs_distance(graph, first);
        while seeds.len() < parts {
            let next = (0..n)
                .filter(|u| !seeds.contains(u))
                .max_by_key(|&u| dist_to_seeds[u].min(n))
                .unwrap_or_else(|| rng.gen_range(0..n));
            seeds.push(next);
            let d = bfs_distance(graph, next);
            for (a, b) in dist_to_seeds.iter_mut().zip(d) {
                *a = (*a).min(b);
            }
        }

        let mut frontiers: Vec<VecDeque<usize>> = seeds
            .iter()
            .enumerate()
            .map(|(p, &s)| {
                assignment[s] = p;
                sizes[p] = 1;
                VecDeque::from([s])
            })
            .collect();

        // round-robin growth
        let mut remaining = n - parts;
        let mut unassigned_scan = 0usize;
        while remaining > 0 {
            let mut progressed = false;
            for p in 0..parts {
                if sizes[p] >= target + self.config.balance_slack {
                    continue;
                }
                // pop from the frontier until we find a node with an unassigned neighbour
                while let Some(&u) = frontiers[p].front() {
                    let next = graph
                        .neighbors(u)
                        .iter()
                        .map(|&(v, _)| v)
                        .find(|&v| assignment[v] == usize::MAX);
                    match next {
                        Some(v) => {
                            assignment[v] = p;
                            sizes[p] += 1;
                            frontiers[p].push_back(v);
                            remaining -= 1;
                            progressed = true;
                            break;
                        }
                        None => {
                            frontiers[p].pop_front();
                        }
                    }
                    if remaining == 0 {
                        break;
                    }
                }
                if remaining == 0 {
                    break;
                }
            }
            if !progressed && remaining > 0 {
                // disconnected remainder: assign the next unassigned node to the smallest part
                while unassigned_scan < n && assignment[unassigned_scan] != usize::MAX {
                    unassigned_scan += 1;
                }
                if unassigned_scan < n {
                    let p = (0..parts).min_by_key(|&p| sizes[p]).expect("parts >= 1");
                    assignment[unassigned_scan] = p;
                    sizes[p] += 1;
                    frontiers[p].push_back(unassigned_scan);
                    remaining -= 1;
                }
            }
        }
        assignment
    }

    /// Kernighan–Lin-style refinement: move boundary nodes to the neighbouring
    /// part with the largest positive gain, respecting the balance constraint.
    fn refine(
        &self,
        graph: &WeightedGraph,
        mut assignment: Vec<usize>,
        parts: usize,
    ) -> Vec<usize> {
        let n = graph.len();
        let target = n.div_ceil(parts);
        let max_size = target + self.config.balance_slack;
        let min_size = (n / parts).saturating_sub(self.config.balance_slack).max(1);
        let mut sizes = vec![0usize; parts];
        for &p in &assignment {
            sizes[p] += 1;
        }

        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0xDEAD);

        for _ in 0..self.config.refinement_passes {
            let mut improved = false;
            order.shuffle(&mut rng);
            for &u in &order {
                let from = assignment[u];
                if sizes[from] <= min_size {
                    continue;
                }
                // weight towards each neighbouring part
                let mut towards: Vec<(usize, i64)> = Vec::new();
                let mut internal: i64 = 0;
                for &(v, w) in graph.neighbors(u) {
                    let pv = assignment[v];
                    if pv == from {
                        internal += w as i64;
                    } else {
                        match towards.iter_mut().find(|(p, _)| *p == pv) {
                            Some((_, acc)) => *acc += w as i64,
                            None => towards.push((pv, w as i64)),
                        }
                    }
                }
                let best = towards
                    .iter()
                    .filter(|&&(p, _)| sizes[p] < max_size)
                    .max_by_key(|&&(_, w)| w);
                if let Some(&(to, external)) = best {
                    if external > internal {
                        assignment[u] = to;
                        sizes[from] -= 1;
                        sizes[to] += 1;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        assignment
    }
}

fn bfs_distance(graph: &WeightedGraph, src: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; graph.len()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in graph.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ring(n: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n, 1);
        }
        g
    }

    fn grid(rows: usize, cols: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    g.add_edge(i, i + 1, 1);
                }
                if r + 1 < rows {
                    g.add_edge(i, i + cols, 1);
                }
            }
        }
        g
    }

    #[test]
    fn single_part_is_trivial() {
        let g = ring(10);
        let p = Partitioner::new(PartitionerConfig::default()).partition(&g, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn partition_is_balanced() {
        let g = grid(8, 8);
        let p = Partitioner::new(PartitionerConfig::default()).partition(&g, 8);
        let sizes = p.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        assert!(*sizes.iter().max().unwrap() <= 8 + 1);
        assert!(*sizes.iter().min().unwrap() >= 8 - 2);
    }

    #[test]
    fn cut_is_much_better_than_random() {
        let g = grid(10, 10);
        let parts = 5;
        let p = Partitioner::new(PartitionerConfig::default()).partition(&g, parts);
        let cut = g.edge_cut(p.assignment());
        // random assignment cuts ~ (1 - 1/parts) of the 180 edges ~ 144
        assert!(cut < 80, "cut = {cut}");
    }

    #[test]
    fn ring_cut_is_near_optimal() {
        let g = ring(32);
        let p = Partitioner::new(PartitionerConfig::default()).partition(&g, 4);
        let cut = g.edge_cut(p.assignment());
        assert!(cut <= 10, "cut = {cut} (optimal is 4)");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid(6, 6);
        let a = Partitioner::new(PartitionerConfig::default()).partition(&g, 4);
        let b = Partitioner::new(PartitionerConfig::default()).partition(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn too_many_parts_panics() {
        let g = ring(4);
        let _ = Partitioner::new(PartitionerConfig::default()).partition(&g, 5);
    }

    #[test]
    fn partition_new_validates_range() {
        let p = Partition::new(vec![0, 1, 1], 2);
        assert_eq!(p.sizes(), vec![1, 2]);
        assert_eq!(p.part_of(2), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_new_rejects_bad_assignment() {
        let _ = Partition::new(vec![0, 2], 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn every_node_is_assigned_and_parts_nonempty(n in 8usize..40, parts in 2usize..6, seed in 0u64..100) {
            prop_assume!(parts <= n);
            let g = ring(n);
            let cfg = PartitionerConfig { seed, ..PartitionerConfig::default() };
            let p = Partitioner::new(cfg).partition(&g, parts);
            prop_assert_eq!(p.assignment().len(), n);
            let sizes = p.sizes();
            prop_assert!(sizes.iter().all(|&s| s > 0));
            prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        }
    }
}
