//! Weighted undirected graphs used by the partitioning flow.

/// A weighted undirected graph stored as adjacency lists.
///
/// Node indices are dense (`0..len`).  Edge weights count how many messages
/// the two endpoints exchange per decoding iteration.
///
/// # Example
///
/// ```
/// use noc_mapping::WeightedGraph;
///
/// let mut g = WeightedGraph::new(3);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 1);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.total_edge_weight(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    adjacency: Vec<Vec<(usize, u64)>>,
}

impl WeightedGraph {
    /// Creates a graph with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        WeightedGraph {
            adjacency: vec![Vec::new(); nodes],
        }
    }

    /// Builds a graph from an adjacency-list description
    /// (`lists[u]` = `(v, weight)` pairs; both directions must be present or
    /// will be merged).
    pub fn from_adjacency(lists: Vec<Vec<(usize, u64)>>) -> Self {
        let mut g = WeightedGraph::new(lists.len());
        for (u, neigh) in lists.iter().enumerate() {
            for &(v, w) in neigh {
                if u < v {
                    g.add_edge(u, v, w);
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Adds an undirected edge (accumulating the weight if it exists).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range nodes or self loops.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: u64) {
        assert!(u < self.len() && v < self.len(), "node out of range");
        assert_ne!(u, v, "self loops are not allowed");
        for (a, b) in [(u, v), (v, u)] {
            match self.adjacency[a].binary_search_by_key(&b, |&(n, _)| n) {
                Ok(pos) => self.adjacency[a][pos].1 += weight,
                Err(pos) => self.adjacency[a].insert(pos, (b, weight)),
            }
        }
    }

    /// Neighbours of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> &[(usize, u64)] {
        &self.adjacency[u]
    }

    /// Number of neighbours of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adjacency[u].len()
    }

    /// Sum of the weights of the edges incident to `u`.
    pub fn weighted_degree(&self, u: usize) -> u64 {
        self.adjacency[u].iter().map(|&(_, w)| w).sum()
    }

    /// Total weight over all (undirected) edges.
    pub fn total_edge_weight(&self) -> u64 {
        self.adjacency
            .iter()
            .flat_map(|n| n.iter())
            .map(|&(_, w)| w)
            .sum::<u64>()
            / 2
    }

    /// Edge cut of an assignment `part[u]`: total weight of edges whose
    /// endpoints live in different parts.
    ///
    /// # Panics
    ///
    /// Panics if `part.len() != self.len()`.
    pub fn edge_cut(&self, part: &[usize]) -> u64 {
        assert_eq!(part.len(), self.len(), "partition length mismatch");
        let mut cut = 0;
        for (u, neigh) in self.adjacency.iter().enumerate() {
            for &(v, w) in neigh {
                if u < v && part[u] != part[v] {
                    cut += w;
                }
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> WeightedGraph {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(0, 2, 3);
        g
    }

    #[test]
    fn construction_and_degrees() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.weighted_degree(0), 4);
        assert_eq!(g.total_edge_weight(), 6);
    }

    #[test]
    fn duplicate_edges_accumulate_weight() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 4);
        assert_eq!(g.total_edge_weight(), 5);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(1, 1, 1);
    }

    #[test]
    fn edge_cut_of_partitions() {
        let g = triangle();
        assert_eq!(g.edge_cut(&[0, 0, 0]), 0);
        assert_eq!(g.edge_cut(&[0, 1, 1]), 1 + 3);
        assert_eq!(g.edge_cut(&[0, 1, 2]), 6);
    }

    #[test]
    fn from_adjacency_matches_manual_construction() {
        let lists = vec![
            vec![(1, 1), (2, 3)],
            vec![(0, 1), (2, 2)],
            vec![(0, 3), (1, 2)],
        ];
        let g = WeightedGraph::from_adjacency(lists);
        assert_eq!(g, triangle());
    }
}
