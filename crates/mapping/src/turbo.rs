//! Mapping of turbo codes onto NoC nodes.
//!
//! Turbo decoding partitions the frame into `P` contiguous windows, one per
//! SISO (the Turbo NOC framework of refs [16], [17]).  During the first half
//! iteration each SISO produces one extrinsic message per trellis section of
//! its window and sends it to the SISO owning the *interleaved* position;
//! during the second half iteration the extrinsics travel along the inverse
//! permutation.
//!
//! The mapping only depends on the frame length and the interleaver
//! permutation, so one implementation serves both the duo-binary 802.16e CTC
//! (one trellis section per *couple*, the ARP permutation) and single-binary
//! codes such as the LTE turbo code (one section per *bit*, the QPP
//! permutation) via [`TurboMapping::from_permutation`].

use crate::MappingQuality;
use noc_sim::{Message, TrafficTrace};
use wimax_turbo::CtcCode;

/// Which half iteration a traffic trace describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HalfIteration {
    /// SISO 1 (natural order) producing a-priori information for SISO 2.
    First,
    /// SISO 2 (interleaved order) producing a-priori information for SISO 1.
    Second,
}

/// A mapping of one turbo code onto `P` SISO processing elements.
///
/// # Example
///
/// ```
/// use noc_mapping::TurboMapping;
/// use wimax_turbo::CtcCode;
///
/// let code = CtcCode::wimax(2400)?;
/// let mapping = TurboMapping::new(&code, 22);
/// let trace = mapping.traffic_trace(noc_mapping::turbo::HalfIteration::First);
/// assert_eq!(trace.total_messages(), 2400);
/// # Ok::<(), wimax_turbo::TurboError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TurboMapping {
    pes: usize,
    owner: Vec<usize>,
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl TurboMapping {
    /// Maps a WiMAX CTC onto `pes` SISOs using contiguous windows of couples
    /// and the code's ARP permutation as traffic.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero or exceeds the number of couples.
    pub fn new(code: &CtcCode, pes: usize) -> Self {
        let pi = code.interleaver();
        let forward: Vec<usize> = (0..code.couples()).map(|j| pi.permute(j)).collect();
        Self::from_permutation(&forward, pes)
    }

    /// Maps a turbo code with the given interleaver permutation onto `pes`
    /// SISOs using contiguous windows of trellis sections.  `permutation[j]`
    /// is the interleaved position of natural section `j`; it must be a
    /// bijection on `0..permutation.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `pes` is zero or exceeds the section count, or if
    /// `permutation` is not a permutation.
    pub fn from_permutation(permutation: &[usize], pes: usize) -> Self {
        let n = permutation.len();
        assert!(pes >= 1, "need at least one PE");
        assert!(pes <= n, "cannot map {n} trellis sections onto {pes} PEs");
        let mut inverse = vec![usize::MAX; n];
        for (j, &p) in permutation.iter().enumerate() {
            assert!(
                p < n && inverse[p] == usize::MAX,
                "interleaver map is not a permutation (position {p} from section {j})"
            );
            inverse[p] = j;
        }
        let owner = (0..n).map(|j| j * pes / n).collect();
        TurboMapping {
            pes,
            owner,
            forward: permutation.to_vec(),
            inverse,
        }
    }

    /// Number of SISO processing elements.
    pub fn pes(&self) -> usize {
        self.pes
    }

    /// Number of trellis sections (couples for the duo-binary CTC, bits for
    /// a single-binary code).
    pub fn sections(&self) -> usize {
        self.owner.len()
    }

    /// The PE owning trellis section `j` (natural order).
    pub fn owner_of(&self, j: usize) -> usize {
        self.owner[j]
    }

    /// The trellis sections assigned to a PE (natural order indices).
    pub fn couples_of(&self, pe: usize) -> Vec<usize> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == pe)
            .map(|(j, _)| j)
            .collect()
    }

    /// Window size of the largest window.
    pub fn max_window(&self) -> usize {
        (0..self.pes)
            .map(|p| self.couples_of(p).len())
            .max()
            .unwrap_or(0)
    }

    /// The traffic of one half iteration.
    pub fn traffic_trace(&self, half: HalfIteration) -> TrafficTrace {
        let n = self.sections();
        let mut per_source: Vec<Vec<Message>> = vec![Vec::new(); self.pes];
        let mut sequence = vec![0usize; self.pes];
        match half {
            HalfIteration::First => {
                // natural-order SISOs send extrinsic of section j to the PE
                // owning interleaved position pi(j)
                for j in 0..n {
                    let src = self.owner[j];
                    let p = self.forward[j];
                    let dst = self.owner[p];
                    let seq = sequence[src];
                    sequence[src] += 1;
                    per_source[src].push(Message::new(src, dst, p, seq));
                }
            }
            HalfIteration::Second => {
                // interleaved-order SISOs send extrinsic of position p back to
                // the PE owning natural position j = pi^{-1}(p)
                for p in 0..n {
                    let src = self.owner[p];
                    let j = self.inverse[p];
                    let dst = self.owner[j];
                    let seq = sequence[src];
                    sequence[src] += 1;
                    per_source[src].push(Message::new(src, dst, j, seq));
                }
            }
        }
        TrafficTrace::new(per_source)
    }

    /// Quality metrics of the first-half traffic (the two halves are
    /// symmetric in volume).
    pub fn quality(&self) -> MappingQuality {
        let trace = self.traffic_trace(HalfIteration::First);
        let counts: Vec<usize> = (0..self.pes).map(|p| trace.messages(p).len()).collect();
        MappingQuality {
            pes: self.pes,
            total_messages: trace.total_messages(),
            remote_messages: trace.remote_messages(),
            max_per_pe: counts.iter().copied().max().unwrap_or(0),
            min_per_pe: counts.iter().copied().min().unwrap_or(0),
            edge_cut: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(n: usize) -> CtcCode {
        CtcCode::wimax(n).unwrap()
    }

    #[test]
    fn windows_are_contiguous_and_balanced() {
        let mapping = TurboMapping::new(&code(2400), 22);
        let mut total = 0;
        for pe in 0..22 {
            let couples = mapping.couples_of(pe);
            total += couples.len();
            // contiguity
            for w in couples.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
            // the paper's design: 2400 couples over 22 SISOs ~ 109 each
            assert!(
                couples.len() >= 109 && couples.len() <= 110,
                "pe {pe}: {}",
                couples.len()
            );
        }
        assert_eq!(total, 2400);
        assert_eq!(mapping.max_window(), 110);
    }

    #[test]
    fn one_message_per_couple_per_half_iteration() {
        let mapping = TurboMapping::new(&code(240), 8);
        for half in [HalfIteration::First, HalfIteration::Second] {
            let t = mapping.traffic_trace(half);
            assert_eq!(t.total_messages(), 240);
            assert!(t.max_destination().unwrap() < 8);
        }
    }

    #[test]
    fn second_half_is_the_inverse_permutation() {
        let mapping = TurboMapping::new(&code(48), 4);
        let first = mapping.traffic_trace(HalfIteration::First);
        let second = mapping.traffic_trace(HalfIteration::Second);
        // volumes match and the src/dst multisets are swapped
        assert_eq!(first.total_messages(), second.total_messages());
        assert_eq!(first.remote_messages(), second.remote_messages());
    }

    #[test]
    fn interleaver_spreads_traffic_across_pes() {
        let mapping = TurboMapping::new(&code(960), 16);
        let q = mapping.quality();
        // The ARP interleaver is designed to scatter couples: most traffic is remote.
        assert!(q.locality() < 0.3, "locality {}", q.locality());
        assert!((q.balance_ratio() - 1.0).abs() < 0.1);
    }

    #[test]
    fn owners_cover_range() {
        let mapping = TurboMapping::new(&code(120), 5);
        assert_eq!(mapping.owner_of(0), 0);
        assert_eq!(mapping.owner_of(119), 4);
        assert_eq!(mapping.pes(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_panics() {
        let _ = TurboMapping::new(&code(24), 0);
    }

    #[test]
    fn single_pe_is_fully_local() {
        let mapping = TurboMapping::new(&code(24), 1);
        assert_eq!(mapping.quality().remote_messages, 0);
    }

    #[test]
    fn from_permutation_matches_the_ctc_path() {
        let ctc = code(240);
        let pi = ctc.interleaver();
        let forward: Vec<usize> = (0..240).map(|j| pi.permute(j)).collect();
        let a = TurboMapping::new(&ctc, 8);
        let b = TurboMapping::from_permutation(&forward, 8);
        for half in [HalfIteration::First, HalfIteration::Second] {
            assert_eq!(
                a.traffic_trace(half).total_messages(),
                b.traffic_trace(half).total_messages()
            );
        }
        assert_eq!(a.max_window(), b.max_window());
        assert_eq!(b.sections(), 240);
    }

    #[test]
    fn arbitrary_permutation_generates_traffic() {
        // a QPP-style quadratic permutation on 64 sections
        let perm: Vec<usize> = (0..64).map(|i| (7 * i + 16 * i * i) % 64).collect();
        let mapping = TurboMapping::from_permutation(&perm, 4);
        let t = mapping.traffic_trace(HalfIteration::First);
        assert_eq!(t.total_messages(), 64);
        assert!(t.max_destination().unwrap() < 4);
        let q = mapping.quality();
        assert!(q.locality() < 1.0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn non_permutation_panics() {
        let _ = TurboMapping::from_permutation(&[0, 0, 1, 2], 2);
    }
}
