//! Mapping of turbo and LDPC codes onto NoC nodes.
//!
//! This crate implements the pre-processing flow of Section III.A of the
//! paper:
//!
//! 1. build the graph representation of the parity-check matrix `H` under the
//!    layered decoding schedule (one node per check row, an edge between two
//!    rows whenever they share a column);
//! 2. partition the graph over the `P` NoC nodes with a balanced, low-cut
//!    partitioner (the paper uses the Metis bundle; here a multilevel greedy
//!    partitioner with Kernighan–Lin-style refinement plays that role — see
//!    `DESIGN.md`);
//! 3. construct the *equivalent interleaver*, i.e. the per-PE ordered list of
//!    messages exchanged during one message-passing phase, and check it for
//!    minimum length and uniform message distribution, keeping the best
//!    candidate.
//!
//! Turbo codes follow the simpler contiguous-window mapping of the Turbo NoC
//! framework: couples are split evenly across the SISOs and the traffic is
//! the ARP permutation itself.
//!
//! # Example
//!
//! ```
//! use noc_mapping::{LdpcMapping, MappingConfig};
//! use wimax_ldpc::{CodeRate, QcLdpcCode};
//!
//! let code = QcLdpcCode::wimax(576, CodeRate::R12)?;
//! let mapping = LdpcMapping::new(&code, 8, MappingConfig::default());
//! let trace = mapping.traffic_trace();
//! // one message per edge of the Tanner graph
//! assert_eq!(trace.total_messages(), code.edge_count());
//! assert!(mapping.quality().balance_ratio() < 1.5);
//! # Ok::<(), wimax_ldpc::LdpcError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod graph;
pub mod ldpc;
pub mod partition;
pub mod turbo;

pub use graph::WeightedGraph;
pub use ldpc::LdpcMapping;
pub use partition::{Partition, Partitioner, PartitionerConfig};
pub use turbo::TurboMapping;

/// Configuration of the code-to-NoC mapping flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingConfig {
    /// Number of partitioning candidates generated (different seeds); the
    /// best one according to [`MappingQuality`] is kept.
    pub candidates: usize,
    /// Number of refinement passes per candidate.
    pub refinement_passes: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            candidates: 4,
            refinement_passes: 8,
            seed: 0xA11CE,
        }
    }
}

/// Quality metrics of a mapping, used to select among candidates
/// (the "minimum length and uniform message distribution" checks of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingQuality {
    /// Number of processing elements the code was mapped onto.
    pub pes: usize,
    /// Total number of messages exchanged per message-passing phase.
    pub total_messages: usize,
    /// Number of messages that cross PE boundaries (the rest are local).
    pub remote_messages: usize,
    /// Largest number of messages injected by any single PE (lower bound on
    /// the phase duration divided by the output rate).
    pub max_per_pe: usize,
    /// Smallest number of messages injected by any single PE.
    pub min_per_pe: usize,
    /// Edge cut of the underlying graph partition (LDPC only; 0 for turbo).
    pub edge_cut: u64,
}

impl MappingQuality {
    /// Fraction of messages that stay inside a PE.
    pub fn locality(&self) -> f64 {
        if self.total_messages == 0 {
            0.0
        } else {
            (self.total_messages - self.remote_messages) as f64 / self.total_messages as f64
        }
    }

    /// Ratio between the busiest and the average PE load (1.0 = perfectly
    /// uniform message distribution).
    pub fn balance_ratio(&self) -> f64 {
        if self.total_messages == 0 || self.pes == 0 {
            return 1.0;
        }
        let average = self.total_messages as f64 / self.pes as f64;
        self.max_per_pe as f64 / average
    }

    /// Scalar cost used to rank candidate mappings: remote traffic dominates,
    /// imbalance breaks ties.
    pub fn cost(&self) -> f64 {
        self.remote_messages as f64 + 0.1 * self.max_per_pe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_locality_and_cost() {
        let q = MappingQuality {
            pes: 8,
            total_messages: 100,
            remote_messages: 40,
            max_per_pe: 13,
            min_per_pe: 12,
            edge_cut: 40,
        };
        assert!((q.locality() - 0.6).abs() < 1e-12);
        assert!(q.cost() > 40.0);
        assert!((q.balance_ratio() - 13.0 / 12.5).abs() < 1e-12);
    }

    #[test]
    fn empty_quality_is_safe() {
        let q = MappingQuality {
            pes: 0,
            total_messages: 0,
            remote_messages: 0,
            max_per_pe: 0,
            min_per_pe: 0,
            edge_cut: 0,
        };
        assert_eq!(q.locality(), 0.0);
        assert_eq!(q.balance_ratio(), 1.0);
    }
}
