//! Deterministic scoped work-pool scheduler.
//!
//! Every fan-out in the workspace — the Monte-Carlo simulation engine's
//! `(Eb/N0 point, frame shard)` schedule, the Table I design-space sweep,
//! the multi-standard compliance sweeps and the `fec-svc` decode daemon —
//! runs on the same [`WorkPool`] instead of carrying its own hand-rolled
//! `std::thread::scope` block.
//!
//! # Submission API
//!
//! A run is configured with the [`PoolRun`] builder returned by
//! [`WorkPool::run`] and finished with one of three terminal methods:
//!
//! * [`PoolRun::indexed`] — `count` independent tasks, results returned
//!   in **index order**;
//! * [`PoolRun::indexed_streamed`] — the same, plus a completion-order
//!   callback on the calling thread for progress streaming;
//! * [`PoolRun::jobs`] — a *dynamic* job set: explicit [`Job`] values
//!   carrying an id, a [`Priority`] and an optional [`CancelToken`], with a
//!   completion handler that may submit follow-up jobs into the running
//!   pool.
//!
//! Builder knobs: [`PoolRun::observed`] injects a [`Clock`] and collects
//! [`PoolObs`] pool observability, [`PoolRun::with_cancel`] attaches a
//! run-level cancellation token, and [`PoolRun::concurrency_hint`] widens
//! the worker head-count for job sets that start small and grow.
//!
//! # Determinism contract
//!
//! The pool executes tasks and merges results **by task id / index, never
//! by completion order**: the vector returned by [`PoolRun::indexed`] is in
//! index order for any worker count, so a caller whose task `i` is a pure
//! function of `i` gets bit-identical output at 1, 2 or 64 workers.  Which
//! worker executes which task is dynamic (a shared ready-queue, so long
//! tasks do not straggle a static chunk), but that assignment is invisible
//! in the merged result.
//!
//! Cancellation keeps the contract: a cancelled job is retired **at the
//! queue barrier** — it either runs to completion or is never started, so
//! every [`JobOutcome::Done`] value is still the pure function of its id and
//! the prefix of completed work is deterministic.  Only *which* jobs got cut
//! off depends on timing.
//!
//! # Continuation jobs
//!
//! The completion handler of [`PoolRun::jobs`] runs on the calling thread
//! (completion order) and may submit follow-up jobs through its
//! [`JobSink`].  The simulation engine uses this to keep early stopping
//! exact — each scheduling round of a point is a batch of `(point, shard)`
//! jobs, and the next round is only submitted once the previous round's
//! merged counters pass the stopping rule — while shards of *other* points
//! keep every worker busy in between.
//!
//! # Example
//!
//! ```
//! use fec_sched::WorkPool;
//!
//! let squares = WorkPool::new(4).run().indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use fec_obs::{Class, Clock, Registry, TimingStat};

/// Per-worker completed-task counters, threaded into the run core when a
/// run is observed.  Workers increment their own slot, so the counters
/// never contend.
struct WorkerProbe {
    counts: Vec<AtomicU64>,
}

impl WorkerProbe {
    fn new(workers: usize) -> Self {
        WorkerProbe {
            counts: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn mark(&self, worker: usize) {
        self.counts[worker].fetch_add(1, Ordering::Relaxed);
    }

    fn fold_into(&self, totals: &mut Vec<u64>) {
        if totals.len() < self.counts.len() {
            totals.resize(self.counts.len(), 0);
        }
        for (t, c) in totals.iter_mut().zip(&self.counts) {
            *t += c.load(Ordering::Relaxed);
        }
    }
}

/// Aggregated observability of one or more pool runs.
///
/// Collected by [`PoolRun::observed`] and folded into a metric [`Registry`]
/// with [`PoolObs::record_into`].  Task counts are deterministic for
/// callers honoring the pool's merge-by-id contract; per-worker totals,
/// the queue high-water mark and the cancelled count are execution-class
/// (schedule-dependent); wait/run spans are timing-class.
#[derive(Debug, Default)]
pub struct PoolObs {
    /// Total tasks submitted (initial + continuations), whether executed
    /// or retired by cancellation.
    pub tasks: u64,
    /// Continuation jobs submitted by completion handlers.
    pub continuations: u64,
    /// High-water mark of in-flight jobs (queued + running).
    pub queue_high_water: u64,
    /// Tasks completed per worker index.
    pub per_worker_tasks: Vec<u64>,
    /// Jobs retired without executing because their cancel token (or the
    /// run's) was set.  Execution-class: when cancellation fires relative
    /// to the schedule is external to the pool.
    pub cancelled: u64,
    /// Span from job submission to execution start.
    pub wait: TimingStat,
    /// Span from execution start to completion.
    pub run: TimingStat,
}

impl PoolObs {
    /// An empty aggregate.
    pub fn new() -> Self {
        PoolObs::default()
    }

    /// Folds this aggregate into `reg` under `prefix` (e.g. `"pool"`):
    /// `<prefix>.tasks` / `.continuations` as count-class counters,
    /// `<prefix>.queue_depth_hw` / `.worker<i>.tasks` (and `.cancelled`,
    /// when any job was cancelled) as execution-class,
    /// `<prefix>.task_wait_ns` / `.task_run_ns` as timing spans.
    pub fn record_into(&self, reg: &mut Registry, prefix: &str) {
        reg.incr(Class::Count, &format!("{prefix}.tasks"), self.tasks);
        reg.incr(
            Class::Count,
            &format!("{prefix}.continuations"),
            self.continuations,
        );
        reg.gauge_max(
            Class::Execution,
            &format!("{prefix}.queue_depth_hw"),
            self.queue_high_water,
        );
        for (w, &tasks) in self.per_worker_tasks.iter().enumerate() {
            reg.incr(
                Class::Execution,
                &format!("{prefix}.worker{w}.tasks"),
                tasks,
            );
        }
        if self.cancelled > 0 {
            reg.incr(
                Class::Execution,
                &format!("{prefix}.cancelled"),
                self.cancelled,
            );
        }
        reg.timing_stat(&format!("{prefix}.task_wait_ns"), &self.wait);
        reg.timing_stat(&format!("{prefix}.task_run_ns"), &self.run);
    }
}

/// Scheduling priority of a [`Job`].  Within one pool run, ready jobs are
/// dispatched strictly by priority level and FIFO within a level; priority
/// affects *when* a job runs, never the merged result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Dispatched before all normal- and low-priority work.
    High,
    /// The default.
    #[default]
    Normal,
    /// Dispatched only when no higher-priority job is ready.
    Low,
}

impl Priority {
    /// Dense rank used to index the ready queues: `High` first.
    fn rank(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Stable lower-case name (`"high"` / `"normal"` / `"low"`), used by
    /// protocol layers that echo priorities as text.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Shared cancellation flag for a [`Job`] or a whole [`PoolRun`].
///
/// Cloning yields another handle to the *same* flag.  Cancellation is
/// cooperative and takes effect at the pool's queue barrier: a job whose
/// token is set when a worker would pick it up is retired as
/// [`JobOutcome::Cancelled`] without executing; a job already running
/// completes normally.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Sets the flag; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`cancel`] has been called on any clone.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Client-side handle to a submitted [`Job`]: echoes the id and priority
/// and shares the job's [`CancelToken`], so the holder can cancel the job
/// while the pool runs.  Obtained from [`Job::handle`].
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: usize,
    priority: Priority,
    cancel: CancelToken,
}

impl JobHandle {
    /// The id the job was created with.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The job's scheduling priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Requests cancellation: if the job has not started when a worker
    /// reaches it, it is retired as [`JobOutcome::Cancelled`].
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// The shared token itself, for callers that aggregate tokens.
    pub fn token(&self) -> &CancelToken {
        &self.cancel
    }
}

/// How a [`Job`] left the pool: executed to completion, or retired at the
/// queue barrier because its cancel token (or the run's) was set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job executed; here is its result.
    Done(T),
    /// The job was retired without executing.
    Cancelled,
}

impl<T> JobOutcome<T> {
    /// The result, if the job executed.
    pub fn done(self) -> Option<T> {
        match self {
            JobOutcome::Done(value) => Some(value),
            JobOutcome::Cancelled => None,
        }
    }

    /// Whether the job was retired without executing.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, JobOutcome::Cancelled)
    }
}

/// A unit of work for [`PoolRun::jobs`]: a caller-chosen id (used to merge
/// deterministically), a [`Priority`], an optional [`CancelToken`] and the
/// closure to execute on a worker.
pub struct Job<'env, T> {
    id: usize,
    priority: Priority,
    cancel: Option<CancelToken>,
    work: Box<dyn FnOnce() -> T + Send + 'env>,
}

impl<'env, T> Job<'env, T> {
    /// Packages `work` under `id` at [`Priority::Normal`] with no cancel
    /// token.  Ids need not be unique or dense — they are opaque to the
    /// pool and only echoed back to the completion handler, which gives
    /// them meaning (e.g. `point * shards + shard`).
    pub fn new(id: usize, work: impl FnOnce() -> T + Send + 'env) -> Self {
        Job {
            id,
            priority: Priority::Normal,
            cancel: None,
            work: Box::new(work),
        }
    }

    /// The id this job was created with.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The job's scheduling priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches a cancellation token (shared: cancelling any clone cancels
    /// this job).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// A [`JobHandle`] for this job, installing a fresh [`CancelToken`] if
    /// none was attached yet.  The handle stays valid while the pool runs.
    pub fn handle(&mut self) -> JobHandle {
        let token = self.cancel.get_or_insert_with(CancelToken::new).clone();
        JobHandle {
            id: self.id,
            priority: self.priority,
            cancel: token,
        }
    }
}

impl<T> std::fmt::Debug for Job<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("cancellable", &self.cancel.is_some())
            .finish()
    }
}

/// Submission handle passed to the [`PoolRun::jobs`] completion handler:
/// jobs submitted here enter the running pool's ready queue.
pub struct JobSink<'env, T> {
    buffered: Vec<Job<'env, T>>,
}

impl<'env, T> JobSink<'env, T> {
    /// Queues a follow-up job.  It becomes runnable as soon as the
    /// completion handler returns.
    pub fn submit(&mut self, job: Job<'env, T>) {
        self.buffered.push(job);
    }

    /// Queues a whole round of follow-up jobs; continuation schedulers that
    /// build rounds as batches (e.g. the adaptive Monte-Carlo engine) submit
    /// them in one call.  Equivalent to calling [`submit`] for each job in
    /// order.
    ///
    /// [`submit`]: JobSink::submit
    pub fn submit_all(&mut self, jobs: impl IntoIterator<Item = Job<'env, T>>) {
        self.buffered.extend(jobs);
    }
}

impl<T> std::fmt::Debug for JobSink<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSink")
            .field("buffered", &self.buffered.len())
            .finish()
    }
}

/// Wraps a job so it reports `(value, wait_ns, run_ns)`: the submission
/// timestamp is captured here (call time == enqueue time for both initial
/// jobs and continuations), the start/end stamps on the executing worker.
/// Priority and cancel token carry over to the wrapper.
fn wrap_job<'env, T: Send + 'env>(
    job: Job<'env, T>,
    clock: &'env dyn Clock,
) -> Job<'env, (T, u64, u64)> {
    let submit_ns = clock.now_ns();
    let Job {
        id,
        priority,
        cancel,
        work,
    } = job;
    let mut wrapped = Job::new(id, move || {
        let start_ns = clock.now_ns();
        let value = work();
        let end_ns = clock.now_ns();
        (
            value,
            start_ns.saturating_sub(submit_ns),
            end_ns.saturating_sub(start_ns),
        )
    })
    .with_priority(priority);
    wrapped.cancel = cancel;
    wrapped
}

/// Ready jobs bucketed by [`Priority`]: strict priority dispatch, FIFO
/// within a level.
struct PendingQueues<'env, T> {
    ranks: [VecDeque<Job<'env, T>>; 3],
}

impl<'env, T> PendingQueues<'env, T> {
    fn new() -> Self {
        PendingQueues {
            ranks: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
        }
    }

    fn push(&mut self, job: Job<'env, T>) {
        self.ranks[job.priority.rank()].push_back(job);
    }

    fn extend(&mut self, jobs: impl IntoIterator<Item = Job<'env, T>>) {
        for job in jobs {
            self.push(job);
        }
    }

    fn pop(&mut self) -> Option<Job<'env, T>> {
        self.ranks.iter_mut().find_map(VecDeque::pop_front)
    }

    fn clear(&mut self) {
        for rank in &mut self.ranks {
            rank.clear();
        }
    }
}

/// State shared between the coordinator and the workers of one
/// [`PoolRun::jobs`] call.
struct JobQueue<'env, T> {
    state: Mutex<JobQueueState<'env, T>>,
    ready: Condvar,
}

struct JobQueueState<'env, T> {
    pending: PendingQueues<'env, T>,
    closed: bool,
}

/// Closes the queue on drop so workers blocked on the condvar exit even if
/// the coordinator unwinds; otherwise the scope join would deadlock.
struct CloseGuard<'queue, 'env, T> {
    queue: &'queue JobQueue<'env, T>,
}

impl<T> Drop for CloseGuard<'_, '_, T> {
    fn drop(&mut self) {
        if let Ok(mut state) = self.queue.state.lock() {
            state.closed = true;
        }
        self.queue.ready.notify_all();
    }
}

/// Whether a job should be retired unexecuted: its own token or the
/// run-level token is set.
fn retired(run_cancel: Option<&CancelToken>, job_cancel: &Option<CancelToken>) -> bool {
    run_cancel.is_some_and(CancelToken::is_cancelled)
        || job_cancel.as_ref().is_some_and(CancelToken::is_cancelled)
}

/// The single execution engine behind every [`PoolRun`] terminal method:
/// a priority ready-queue drained by `workers` scoped threads (or inline
/// when `workers == 1`), results handed to `on_complete` on the calling
/// thread in completion order, continuations fed back into the queue.
///
/// Cancellation is checked when a worker pops a job: a retired job is
/// reported as [`JobOutcome::Cancelled`] without running (and without
/// counting in `probe`); jobs already running complete normally, so the
/// cut is always at the queue barrier.
fn run_core<'env, T, F>(
    workers: usize,
    run_cancel: Option<&CancelToken>,
    initial: Vec<Job<'env, T>>,
    mut on_complete: F,
    probe: Option<&WorkerProbe>,
) where
    T: Send,
    F: FnMut(usize, JobOutcome<T>, &mut JobSink<'env, T>),
{
    if initial.is_empty() {
        return;
    }
    if workers == 1 {
        let mut pending = PendingQueues::new();
        pending.extend(initial);
        while let Some(job) = pending.pop() {
            let Job {
                id, cancel, work, ..
            } = job;
            let outcome = if retired(run_cancel, &cancel) {
                JobOutcome::Cancelled
            } else {
                let value = work();
                if let Some(p) = probe {
                    p.mark(0);
                }
                JobOutcome::Done(value)
            };
            let mut sink = JobSink {
                buffered: Vec::new(),
            };
            on_complete(id, outcome, &mut sink);
            pending.extend(sink.buffered);
        }
        return;
    }

    let mut outstanding = initial.len();
    let mut pending = PendingQueues::new();
    pending.extend(initial);
    let queue = JobQueue {
        state: Mutex::new(JobQueueState {
            pending,
            closed: false,
        }),
        ready: Condvar::new(),
    };
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|scope| {
        let _guard = CloseGuard { queue: &queue };
        // Owned by the scope closure so an unwind drops it *before* the
        // scope joins: pending sends then fail and workers exit early.
        let rx = rx;
        for worker in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || loop {
                let job = {
                    let mut state = queue.state.lock().expect("job queue poisoned");
                    loop {
                        if let Some(job) = state.pending.pop() {
                            break Some(job);
                        }
                        if state.closed {
                            break None;
                        }
                        state = queue.ready.wait(state).expect("job queue poisoned");
                    }
                };
                let Some(job) = job else { return };
                let Job {
                    id, cancel, work, ..
                } = job;
                let message = if retired(run_cancel, &cancel) {
                    Ok(None)
                } else {
                    let result = catch_unwind(AssertUnwindSafe(work));
                    if let Some(p) = probe {
                        p.mark(worker);
                    }
                    result.map(Some)
                };
                if tx.send((id, message)).is_err() {
                    return;
                }
            });
        }
        drop(tx);
        while outstanding > 0 {
            let (id, message) = rx.recv().expect("pool workers exited early");
            outstanding -= 1;
            match message {
                Ok(executed) => {
                    let outcome = match executed {
                        Some(value) => JobOutcome::Done(value),
                        None => JobOutcome::Cancelled,
                    };
                    let mut sink = JobSink {
                        buffered: Vec::new(),
                    };
                    on_complete(id, outcome, &mut sink);
                    if !sink.buffered.is_empty() {
                        outstanding += sink.buffered.len();
                        let mut state = queue.state.lock().expect("job queue poisoned");
                        state.pending.extend(sink.buffered);
                        drop(state);
                        queue.ready.notify_all();
                    }
                }
                Err(payload) => {
                    // Cancel the queued work, then unwind: `_guard` closes
                    // the (now empty) queue and the dropped `rx` makes
                    // in-flight sends fail, so the scope join returns
                    // promptly instead of draining every job.
                    if let Ok(mut state) = queue.state.lock() {
                        state.pending.clear();
                    }
                    resume_unwind(payload)
                }
            }
        }
        // `_guard` drops here: closes the queue and wakes idle workers
        // so the scope join returns.
    });
}

/// A fixed-size scoped worker pool executing task sets with id-order
/// (deterministic) merging.  Configure a run with [`WorkPool::run`]; see
/// the module docs for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    workers: usize,
}

impl WorkPool {
    /// Creates a pool that will use `workers` threads per run; `0` means one
    /// per available core.  Construction is free — threads are scoped to
    /// each run.
    pub const fn new(workers: usize) -> Self {
        WorkPool { workers }
    }

    /// The configured worker count (`0` = per core), as given to [`new`].
    ///
    /// [`new`]: WorkPool::new
    pub const fn requested_workers(&self) -> usize {
        self.workers
    }

    /// The number of threads a run over `tasks` concurrent tasks will use:
    /// the configured count (or one per core for `0`), clamped to the task
    /// count so no thread is spawned just to find an empty queue.
    pub fn effective_workers(&self, tasks: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        requested.clamp(1, tasks.max(1))
    }

    /// Starts configuring a run.  The returned [`PoolRun`] is consumed by
    /// one of its terminal methods ([`indexed`], [`indexed_streamed`],
    /// [`jobs`]).
    ///
    /// [`indexed`]: PoolRun::indexed
    /// [`indexed_streamed`]: PoolRun::indexed_streamed
    /// [`jobs`]: PoolRun::jobs
    pub fn run<'env>(&self) -> PoolRun<'env> {
        PoolRun {
            pool: *self,
            cancel: None,
            concurrency_hint: 0,
            clock: None,
            obs: None,
        }
    }

    /// Executes `count` independent tasks and returns their results in
    /// **index order** regardless of completion order or worker count.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    #[deprecated(note = "use `pool.run().indexed(count, task)`")]
    pub fn run_indexed<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run().indexed(count, task)
    }

    /// Like [`run_indexed`], but additionally invokes `on_done` from the
    /// calling thread as each task finishes (**completion order**).
    ///
    /// [`run_indexed`]: WorkPool::run_indexed
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    #[deprecated(note = "use `pool.run().indexed_streamed(count, task, on_done)`")]
    pub fn run_indexed_with<T, F, C>(&self, count: usize, task: F, on_done: C) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, &T),
    {
        self.run().indexed_streamed(count, task, on_done)
    }

    /// Like [`run_indexed_with`], but additionally collects pool
    /// observability into `obs`.
    ///
    /// [`run_indexed_with`]: WorkPool::run_indexed_with
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    #[deprecated(note = "use `pool.run().observed(clock, obs).indexed_streamed(...)`")]
    pub fn run_indexed_observed<T, F, C>(
        &self,
        count: usize,
        task: F,
        on_done: C,
        clock: &dyn Clock,
        obs: &mut PoolObs,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, &T),
    {
        self.run()
            .observed(clock, obs)
            .indexed_streamed(count, task, on_done)
    }

    /// Executes a *dynamic* job set: starts with `initial`, and after each
    /// job finishes calls `on_complete(id, result, sink)` on the calling
    /// thread (completion order), which may submit follow-up jobs.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing job on the calling thread.
    #[deprecated(note = "use `pool.run().jobs(initial, on_complete)`")]
    pub fn run_jobs<'env, T, F>(&self, initial: Vec<Job<'env, T>>, mut on_complete: F)
    where
        T: Send + 'env,
        F: FnMut(usize, T, &mut JobSink<'env, T>),
    {
        self.run().jobs(initial, |id, outcome, sink| {
            if let JobOutcome::Done(value) = outcome {
                on_complete(id, value, sink);
            }
        });
    }

    /// Like [`run_jobs`], but additionally collects pool observability into
    /// `obs` with spans measured by the injected `clock`.
    ///
    /// [`run_jobs`]: WorkPool::run_jobs
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing job on the calling thread.
    #[deprecated(note = "use `pool.run().observed(clock, obs).jobs(initial, on_complete)`")]
    pub fn run_jobs_observed<'env, T, F>(
        &self,
        initial: Vec<Job<'env, T>>,
        mut on_complete: F,
        clock: &'env dyn Clock,
        obs: &'env mut PoolObs,
    ) where
        T: Send + 'env,
        F: FnMut(usize, T, &mut JobSink<'env, T>),
    {
        self.run()
            .observed(clock, obs)
            .jobs(initial, |id, outcome, sink| {
                if let JobOutcome::Done(value) = outcome {
                    on_complete(id, value, sink);
                }
            });
    }
}

impl Default for WorkPool {
    /// One worker per available core.
    fn default() -> Self {
        WorkPool::new(0)
    }
}

/// Builder for one pool run, created by [`WorkPool::run`].
///
/// Chain [`observed`], [`with_cancel`] and [`concurrency_hint`] as needed,
/// then consume the builder with [`indexed`], [`indexed_streamed`] or
/// [`jobs`].
///
/// [`observed`]: PoolRun::observed
/// [`with_cancel`]: PoolRun::with_cancel
/// [`concurrency_hint`]: PoolRun::concurrency_hint
/// [`indexed`]: PoolRun::indexed
/// [`indexed_streamed`]: PoolRun::indexed_streamed
/// [`jobs`]: PoolRun::jobs
pub struct PoolRun<'env> {
    pool: WorkPool,
    cancel: Option<CancelToken>,
    concurrency_hint: usize,
    clock: Option<&'env dyn Clock>,
    obs: Option<&'env mut PoolObs>,
}

impl std::fmt::Debug for PoolRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolRun")
            .field("pool", &self.pool)
            .field("cancellable", &self.cancel.is_some())
            .field("concurrency_hint", &self.concurrency_hint)
            .field("observed", &self.obs.is_some())
            .finish()
    }
}

impl<'env> PoolRun<'env> {
    /// Attaches a run-level cancellation token: once set, every job not yet
    /// started is retired as [`JobOutcome::Cancelled`] at the queue barrier.
    /// Only meaningful for [`jobs`] runs — [`indexed`] runs must produce
    /// every index and panic if a token is attached.
    ///
    /// [`jobs`]: PoolRun::jobs
    /// [`indexed`]: PoolRun::indexed
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sizes the worker head-count as if the run started with at least
    /// `tasks` concurrent tasks.  Job sets that start with a few seed jobs
    /// and fan out through continuations (e.g. a daemon draining a deep job
    /// queue) would otherwise be clamped to `initial.len()` workers.
    pub fn concurrency_hint(mut self, tasks: usize) -> Self {
        self.concurrency_hint = tasks;
        self
    }

    /// Collects pool observability into `obs`, with wait/run spans measured
    /// by `clock`: task/continuation/cancellation totals, the in-flight
    /// high-water mark and per-worker completion counts.
    pub fn observed(mut self, clock: &'env dyn Clock, obs: &'env mut PoolObs) -> Self {
        self.clock = Some(clock);
        self.obs = Some(obs);
        self
    }

    /// Executes `count` independent tasks and returns their results in
    /// **index order** regardless of completion order or worker count.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    /// Panics if a cancel token was attached (see [`with_cancel`]).
    ///
    /// [`with_cancel`]: PoolRun::with_cancel
    pub fn indexed<T, F>(self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.indexed_streamed(count, task, |_, _| {})
    }

    /// Like [`indexed`], but additionally invokes `on_done` from the
    /// calling thread as each task finishes (**completion order**), so
    /// callers can stream progress while the set is still running.
    ///
    /// [`indexed`]: PoolRun::indexed
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    /// Panics if a cancel token was attached (see [`with_cancel`]).
    ///
    /// [`with_cancel`]: PoolRun::with_cancel
    pub fn indexed_streamed<T, F, C>(self, count: usize, task: F, mut on_done: C) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, &T),
    {
        assert!(
            self.cancel.is_none(),
            "indexed runs do not support cancellation: every index must produce a result"
        );
        if count == 0 {
            return Vec::new();
        }
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(count, || None);
        let task = &task;
        let initial: Vec<Job<'_, T>> = (0..count)
            .map(|index| Job::new(index, move || task(index)))
            .collect();
        self.jobs(initial, |index, outcome, _| {
            let JobOutcome::Done(value) = outcome else {
                unreachable!("indexed tasks carry no cancel token")
            };
            on_done(index, &value);
            slots[index] = Some(value);
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every task completes exactly once"))
            .collect()
    }

    /// Executes a *dynamic* job set: starts with `initial`, and after each
    /// job finishes (or is retired by cancellation) calls
    /// `on_complete(id, outcome, sink)` on the calling thread (completion
    /// order), which may submit follow-up jobs into the running pool.
    /// Returns once every job (initial and submitted) has been handed to
    /// `on_complete`.
    ///
    /// Determinism is the caller's half of the contract: merge results by
    /// `id` (not arrival order) and derive follow-up jobs only from merged
    /// state, and the outcome is independent of the worker count.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing job on the calling thread.
    pub fn jobs<T, F>(self, initial: Vec<Job<'env, T>>, mut on_complete: F)
    where
        T: Send + 'env,
        F: FnMut(usize, JobOutcome<T>, &mut JobSink<'env, T>),
    {
        if initial.is_empty() {
            return;
        }
        let PoolRun {
            pool,
            cancel,
            concurrency_hint,
            clock,
            obs,
        } = self;
        let workers = pool.effective_workers(initial.len().max(concurrency_hint));
        match (clock, obs) {
            (Some(clock), Some(obs)) => {
                let probe = WorkerProbe::new(workers);
                let mut in_flight = initial.len() as u64;
                let mut high_water = in_flight;
                let mut tasks = in_flight;
                let mut continuations = 0u64;
                let mut cancelled = 0u64;
                let mut wait = TimingStat::new();
                let mut run = TimingStat::new();
                let wrapped: Vec<Job<'env, (T, u64, u64)>> = initial
                    .into_iter()
                    .map(|job| wrap_job(job, clock))
                    .collect();
                run_core(
                    workers,
                    cancel.as_ref(),
                    wrapped,
                    |id, timed, sink| {
                        in_flight -= 1;
                        let outcome = match timed {
                            JobOutcome::Done((value, wait_ns, run_ns)) => {
                                wait.record(wait_ns);
                                run.record(run_ns);
                                JobOutcome::Done(value)
                            }
                            JobOutcome::Cancelled => {
                                cancelled += 1;
                                JobOutcome::Cancelled
                            }
                        };
                        let mut user_sink = JobSink {
                            buffered: Vec::new(),
                        };
                        on_complete(id, outcome, &mut user_sink);
                        let submitted = user_sink.buffered.len() as u64;
                        continuations += submitted;
                        tasks += submitted;
                        in_flight += submitted;
                        high_water = high_water.max(in_flight);
                        sink.submit_all(
                            user_sink
                                .buffered
                                .into_iter()
                                .map(|job| wrap_job(job, clock)),
                        );
                    },
                    Some(&probe),
                );
                obs.tasks += tasks;
                obs.continuations += continuations;
                obs.cancelled += cancelled;
                obs.queue_high_water = obs.queue_high_water.max(high_water);
                obs.wait.merge(&wait);
                obs.run.merge(&run);
                probe.fold_into(&mut obs.per_worker_tasks);
            }
            _ => run_core(workers, cancel.as_ref(), initial, on_complete, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_arrive_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 8] {
            let out = WorkPool::new(workers).run().indexed(17, |i| 3 * i + 1);
            assert_eq!(out, (0..17).map(|i| 3 * i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn out_of_order_completion_still_merges_in_index_order() {
        // Low indices sleep longest, so with 8 workers the completion order
        // is (almost surely) not the index order; the merged result must be
        // index-ordered regardless, and the completion callback must see
        // every index exactly once.  Scheduling jitter could still complete
        // a run in index order, so retry a few times until an out-of-order
        // run is observed — every attempt must merge correctly either way.
        let count = 8;
        let mut observed_out_of_order = false;
        for _ in 0..5 {
            let mut completion_order = Vec::new();
            let out = WorkPool::new(count).run().indexed_streamed(
                count,
                |i| {
                    std::thread::sleep(Duration::from_millis(10 * (count - i) as u64));
                    i * i
                },
                |i, &value| {
                    assert_eq!(value, i * i);
                    completion_order.push(i);
                },
            );
            assert_eq!(out, (0..count).map(|i| i * i).collect::<Vec<_>>());
            let mut seen = completion_order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..count).collect::<Vec<_>>());
            if completion_order.windows(2).any(|w| w[0] > w[1]) {
                observed_out_of_order = true;
                break;
            }
        }
        assert!(
            observed_out_of_order,
            "staggered sleeps never completed out of order in 5 attempts"
        );
    }

    #[test]
    fn zero_tasks_run_nowhere() {
        let out: Vec<u32> = WorkPool::new(4).run().indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn effective_workers_clamps_to_tasks_and_resolves_per_core() {
        assert_eq!(WorkPool::new(64).effective_workers(7), 7);
        assert_eq!(WorkPool::new(3).effective_workers(100), 3);
        assert_eq!(WorkPool::new(5).effective_workers(0), 1);
        assert!(WorkPool::default().effective_workers(100) >= 1);
        assert_eq!(WorkPool::new(2).requested_workers(), 2);
    }

    #[test]
    fn continuation_jobs_run_until_the_handler_stops_submitting() {
        // Each of 4 job ids runs 3 "rounds"; the handler submits the next
        // round on completion of the previous one.  Every round increments
        // the id's counter, so the final counters prove each continuation
        // ran exactly once, at any worker count.
        for workers in [1, 2, 8] {
            let mut rounds = [0usize; 4];
            let initial = (0..4).map(|id| Job::new(id, move || id)).collect();
            WorkPool::new(workers)
                .run()
                .jobs(initial, |id, outcome, sink| {
                    assert_eq!(outcome, JobOutcome::Done(id));
                    rounds[id] += 1;
                    if rounds[id] < 3 {
                        sink.submit(Job::new(id, move || id));
                    }
                });
            assert_eq!(rounds, [3; 4], "workers = {workers}");
        }
    }

    #[test]
    fn job_ids_are_opaque_and_echoed_back() {
        let job = Job::new(42, || "x");
        assert_eq!(job.id(), 42);
        let mut seen = Vec::new();
        WorkPool::new(1).run().jobs(vec![job], |id, outcome, _| {
            seen.push((id, outcome.done().unwrap()));
        });
        assert_eq!(seen, vec![(42, "x")]);
    }

    #[test]
    fn jobs_may_borrow_the_environment() {
        let data = [1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        let initial = data
            .iter()
            .enumerate()
            .map(|(i, value)| Job::new(i, move || *value))
            .collect();
        WorkPool::new(2).run().jobs(initial, |_, outcome, _| {
            total.fetch_add(outcome.done().unwrap() as usize, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn priorities_order_dispatch_at_one_worker() {
        // One worker drains the ready queue strictly by priority level and
        // FIFO within a level, regardless of submission order.
        let mut order = Vec::new();
        let initial = vec![
            Job::new(0, || ()).with_priority(Priority::Low),
            Job::new(1, || ()),
            Job::new(2, || ()).with_priority(Priority::High),
            Job::new(3, || ()).with_priority(Priority::High),
            Job::new(4, || ()).with_priority(Priority::Normal),
        ];
        WorkPool::new(1)
            .run()
            .jobs(initial, |id, _, _| order.push(id));
        assert_eq!(order, vec![2, 3, 1, 4, 0]);
    }

    #[test]
    fn job_handle_shares_the_cancel_token() {
        let mut job = Job::new(7, || "never runs").with_priority(Priority::High);
        let handle = job.handle();
        assert_eq!(handle.id(), 7);
        assert_eq!(handle.priority(), Priority::High);
        assert!(!handle.token().is_cancelled());
        handle.cancel();
        assert!(handle.token().is_cancelled());

        let mut outcomes = Vec::new();
        WorkPool::new(1)
            .run()
            .jobs(vec![job], |id, outcome, _| outcomes.push((id, outcome)));
        assert_eq!(outcomes, vec![(7, JobOutcome::Cancelled)]);
    }

    #[test]
    fn cancelled_jobs_are_retired_without_running() {
        // Job 1 is cancelled before the run starts; its closure must never
        // execute, while job 0 completes normally.
        let ran = AtomicUsize::new(0);
        let token = CancelToken::new();
        token.cancel();
        let initial = vec![
            Job::new(0, || ran.fetch_add(1, Ordering::Relaxed)),
            Job::new(1, || ran.fetch_add(100, Ordering::Relaxed)).with_cancel(token),
        ];
        let mut seen = Vec::new();
        WorkPool::new(1).run().jobs(initial, |id, outcome, _| {
            seen.push((id, outcome.is_cancelled()));
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(seen, vec![(0, false), (1, true)]);
    }

    #[test]
    fn run_level_cancel_cuts_at_the_queue_barrier() {
        // The handler cancels the whole run after the first completion; at
        // one worker exactly the remaining three jobs are retired, and the
        // completed prefix is bit-identical to an uncancelled run's.
        let token = CancelToken::new();
        let tok = token.clone();
        let initial = (0..4).map(|id| Job::new(id, move || id * id)).collect();
        let mut done = Vec::new();
        let mut cancelled = 0;
        WorkPool::new(1)
            .run()
            .with_cancel(token)
            .jobs(initial, |id, outcome, _| match outcome {
                JobOutcome::Done(value) => {
                    assert_eq!(value, id * id);
                    done.push(id);
                    tok.cancel();
                }
                JobOutcome::Cancelled => cancelled += 1,
            });
        assert_eq!(done, vec![0]);
        assert_eq!(cancelled, 3);
    }

    #[test]
    fn cancellation_keeps_completed_results_pure_at_any_worker_count() {
        // Cancelling mid-run changes *which* jobs complete, never *what* a
        // completed job returns: every Done value must still be the pure
        // function of its id, and every job is accounted for exactly once.
        for workers in [1, 2, 4] {
            let token = CancelToken::new();
            let tok = token.clone();
            let initial = (0..8).map(|id| Job::new(id, move || id * 10)).collect();
            let mut done = 0usize;
            let mut cancelled = 0usize;
            WorkPool::new(workers)
                .run()
                .with_cancel(token)
                .jobs(initial, |id, outcome, _| match outcome {
                    JobOutcome::Done(value) => {
                        assert_eq!(value, id * 10, "workers = {workers}");
                        done += 1;
                        if done == 2 {
                            tok.cancel();
                        }
                    }
                    JobOutcome::Cancelled => cancelled += 1,
                });
            assert!(done >= 2, "workers = {workers}");
            assert_eq!(done + cancelled, 8, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "indexed runs do not support cancellation")]
    fn indexed_runs_reject_cancel_tokens() {
        WorkPool::new(1)
            .run()
            .with_cancel(CancelToken::new())
            .indexed(1, |i| i);
    }

    #[test]
    fn concurrency_hint_widens_a_seed_job_run() {
        use fec_obs::ManualClock;
        // One seed job fanning out through continuations: without a hint the
        // pool clamps to 1 worker; the hint sizes it for the eventual width.
        let clock = ManualClock::new();
        let chain = |id: usize| Job::new(id, move || id);
        let mut narrow = PoolObs::new();
        WorkPool::new(4)
            .run()
            .observed(&clock, &mut narrow)
            .jobs(vec![chain(0)], |id, _, sink| {
                if id < 7 {
                    sink.submit(chain(id + 1));
                }
            });
        assert_eq!(narrow.per_worker_tasks.len(), 1);

        let mut wide = PoolObs::new();
        WorkPool::new(4)
            .run()
            .observed(&clock, &mut wide)
            .concurrency_hint(64)
            .jobs(vec![chain(0)], |id, _, sink| {
                if id < 7 {
                    sink.submit(chain(id + 1));
                }
            });
        assert_eq!(wide.per_worker_tasks.len(), 4);
        assert_eq!(wide.tasks, 8);
    }

    #[test]
    fn observed_indexed_run_counts_every_task_once() {
        use fec_obs::ManualClock;
        for workers in [1, 2, 8] {
            let clock = ManualClock::new();
            let mut obs = PoolObs::new();
            let out = WorkPool::new(workers)
                .run()
                .observed(&clock, &mut obs)
                .indexed_streamed(10, |i| i + 1, |_, _| {});
            assert_eq!(out, (1..=10).collect::<Vec<_>>());
            assert_eq!(obs.tasks, 10, "workers = {workers}");
            assert_eq!(obs.continuations, 0);
            assert_eq!(obs.cancelled, 0);
            assert_eq!(obs.queue_high_water, 10);
            assert_eq!(
                obs.per_worker_tasks.iter().sum::<u64>(),
                10,
                "workers = {workers}"
            );
            assert_eq!(obs.run.count, 10);
        }
    }

    #[test]
    fn observed_jobs_count_continuations_and_keep_merge_contract() {
        use fec_obs::ManualClock;
        for workers in [1, 2, 8] {
            let clock = ManualClock::new();
            let mut obs = PoolObs::new();
            let mut rounds = [0usize; 4];
            let initial = (0..4).map(|id| Job::new(id, move || id)).collect();
            WorkPool::new(workers)
                .run()
                .observed(&clock, &mut obs)
                .jobs(initial, |id, outcome, sink| {
                    assert_eq!(outcome, JobOutcome::Done(id));
                    rounds[id] += 1;
                    if rounds[id] < 3 {
                        sink.submit(Job::new(id, move || id));
                    }
                });
            assert_eq!(rounds, [3; 4], "workers = {workers}");
            // 4 initial + 8 continuations, independent of the worker count:
            // the deterministic half of the observability contract.
            assert_eq!(obs.tasks, 12, "workers = {workers}");
            assert_eq!(obs.continuations, 8, "workers = {workers}");
            assert!(obs.queue_high_water >= 1);
            assert_eq!(obs.per_worker_tasks.iter().sum::<u64>(), 12);
        }
    }

    #[test]
    fn observed_cancellations_are_counted_and_recorded() {
        use fec_obs::ManualClock;
        let clock = ManualClock::new();
        let mut obs = PoolObs::new();
        let token = CancelToken::new();
        token.cancel();
        let initial = vec![
            Job::new(0, || 0usize),
            Job::new(1, || 1usize).with_cancel(token),
        ];
        WorkPool::new(1)
            .run()
            .observed(&clock, &mut obs)
            .jobs(initial, |_, _, _| {});
        assert_eq!(obs.tasks, 2);
        assert_eq!(obs.cancelled, 1);
        assert_eq!(obs.run.count, 1, "only the executed job has a run span");

        let mut reg = Registry::new();
        obs.record_into(&mut reg, "pool");
        assert_eq!(reg.counter("pool.cancelled"), Some(1));
    }

    #[test]
    fn observed_spans_use_the_injected_clock() {
        use fec_obs::{Class, ManualClock, MetricValue, Registry};
        let clock = ManualClock::new();
        let mut obs = PoolObs::new();
        let initial = vec![Job::new(0, || {
            // Runs on the single worker; the clock only moves when we say so.
            7usize
        })];
        WorkPool::new(1)
            .run()
            .observed(&clock, &mut obs)
            .jobs(initial, |_, _, _| {});
        assert_eq!(obs.run.count, 1);
        assert_eq!(obs.run.total_ns, 0, "manual clock never advanced");

        let mut reg = Registry::new();
        obs.record_into(&mut reg, "pool");
        assert_eq!(reg.counter("pool.tasks"), Some(1));
        assert!(matches!(
            reg.get("pool.queue_depth_hw").map(|m| (&m.value, m.class)),
            Some((MetricValue::Gauge(_), Class::Execution))
        ));
        assert!(reg.get("pool.task_run_ns").is_some());
        assert!(
            reg.get("pool.cancelled").is_none(),
            "cancelled metric only appears when a job was cancelled"
        );
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn task_panics_propagate_to_the_caller() {
        WorkPool::new(4).run().indexed(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "job exploded")]
    fn job_panics_propagate_without_deadlocking_the_pool() {
        let initial = (0..8)
            .map(|id| {
                Job::new(id, move || {
                    if id == 5 {
                        panic!("job exploded");
                    }
                    id
                })
            })
            .collect();
        WorkPool::new(4).run().jobs(initial, |_, _, _| {});
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_delegate() {
        let out = WorkPool::new(2).run_indexed(5, |i| i * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8]);

        let mut seen = Vec::new();
        let initial = (0..3).map(|id| Job::new(id, move || id + 100)).collect();
        WorkPool::new(1).run_jobs(initial, |id, value, _| seen.push((id, value)));
        assert_eq!(seen, vec![(0, 100), (1, 101), (2, 102)]);
    }
}
