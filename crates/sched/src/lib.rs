//! Deterministic scoped work-pool scheduler.
//!
//! Every fan-out in the workspace — the Monte-Carlo simulation engine's
//! `(Eb/N0 point, frame shard)` schedule, the Table I design-space sweep and
//! the multi-standard compliance sweeps — runs on the same [`WorkPool`]
//! instead of carrying its own hand-rolled `std::thread::scope` block.
//!
//! # Determinism contract
//!
//! The pool executes an *indexed* set of independent tasks and merges the
//! results **by task index, never by completion order**: the returned vector
//! of [`WorkPool::run_indexed`] is in index order for any worker count, so a
//! caller whose task `i` is a pure function of `i` gets bit-identical output
//! at 1, 2 or 64 workers.  Which worker executes which index is dynamic (an
//! atomic next-index counter, so long tasks do not straggle a static chunk),
//! but that assignment is invisible in the merged result.
//!
//! Callers that want progress output while the set is still running pass a
//! completion-order callback ([`WorkPool::run_indexed_with`]); it runs on
//! the calling thread, so it may stream rows to disk without locking.
//!
//! # Continuation jobs
//!
//! [`WorkPool::run_jobs`] generalizes the indexed set to a *dynamic* job
//! queue: the completion handler (again on the calling thread) may submit
//! follow-up jobs into the running pool.  The simulation engine uses this to
//! keep early stopping exact — each scheduling round of a point is a batch
//! of `(point, shard)` jobs, and the next round is only submitted once the
//! previous round's merged counters pass the stopping rule — while shards of
//! *other* points keep every worker busy in between.
//!
//! # Example
//!
//! ```
//! use fec_sched::WorkPool;
//!
//! let squares = WorkPool::new(4).run_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};

use fec_obs::{Class, Clock, Registry, TimingStat};

/// Per-worker completed-task counters, threaded into the inner run loops
/// when a run is observed.  Workers increment their own slot, so the
/// counters never contend.
struct WorkerProbe {
    counts: Vec<AtomicU64>,
}

impl WorkerProbe {
    fn new(workers: usize) -> Self {
        WorkerProbe {
            counts: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn mark(&self, worker: usize) {
        self.counts[worker].fetch_add(1, Ordering::Relaxed);
    }

    fn fold_into(&self, totals: &mut Vec<u64>) {
        if totals.len() < self.counts.len() {
            totals.resize(self.counts.len(), 0);
        }
        for (t, c) in totals.iter_mut().zip(&self.counts) {
            *t += c.load(Ordering::Relaxed);
        }
    }
}

/// Aggregated observability of one or more pool runs.
///
/// Collected by [`WorkPool::run_jobs_observed`] /
/// [`WorkPool::run_indexed_observed`] and folded into a metric
/// [`Registry`] with [`PoolObs::record_into`].  Task counts are
/// deterministic for callers honoring the pool's merge-by-id contract;
/// per-worker totals and the queue high-water mark are execution-class
/// (schedule-dependent); wait/run spans are timing-class.
#[derive(Debug, Default)]
pub struct PoolObs {
    /// Total tasks executed (initial + continuations).
    pub tasks: u64,
    /// Continuation jobs submitted by completion handlers.
    pub continuations: u64,
    /// High-water mark of in-flight jobs (queued + running).
    pub queue_high_water: u64,
    /// Tasks completed per worker index.
    pub per_worker_tasks: Vec<u64>,
    /// Span from job submission to execution start.
    pub wait: TimingStat,
    /// Span from execution start to completion.
    pub run: TimingStat,
}

impl PoolObs {
    /// An empty aggregate.
    pub fn new() -> Self {
        PoolObs::default()
    }

    /// Folds this aggregate into `reg` under `prefix` (e.g. `"pool"`):
    /// `<prefix>.tasks` / `.continuations` as count-class counters,
    /// `<prefix>.queue_depth_hw` / `.worker<i>.tasks` as execution-class,
    /// `<prefix>.task_wait_ns` / `.task_run_ns` as timing spans.
    pub fn record_into(&self, reg: &mut Registry, prefix: &str) {
        reg.incr(Class::Count, &format!("{prefix}.tasks"), self.tasks);
        reg.incr(
            Class::Count,
            &format!("{prefix}.continuations"),
            self.continuations,
        );
        reg.gauge_max(
            Class::Execution,
            &format!("{prefix}.queue_depth_hw"),
            self.queue_high_water,
        );
        for (w, &tasks) in self.per_worker_tasks.iter().enumerate() {
            reg.incr(
                Class::Execution,
                &format!("{prefix}.worker{w}.tasks"),
                tasks,
            );
        }
        reg.timing_stat(&format!("{prefix}.task_wait_ns"), &self.wait);
        reg.timing_stat(&format!("{prefix}.task_run_ns"), &self.run);
    }
}

/// A unit of work for [`WorkPool::run_jobs`]: a caller-chosen id (used to
/// merge deterministically) plus the closure to execute on a worker.
pub struct Job<'env, T> {
    id: usize,
    work: Box<dyn FnOnce() -> T + Send + 'env>,
}

impl<'env, T> Job<'env, T> {
    /// Packages `work` under `id`.  Ids need not be unique or dense — they
    /// are opaque to the pool and only echoed back to the completion
    /// handler, which gives them meaning (e.g. `point * shards + shard`).
    pub fn new(id: usize, work: impl FnOnce() -> T + Send + 'env) -> Self {
        Job {
            id,
            work: Box::new(work),
        }
    }

    /// The id this job was created with.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl<T> std::fmt::Debug for Job<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("id", &self.id).finish()
    }
}

/// Submission handle passed to the [`WorkPool::run_jobs`] completion
/// handler: jobs submitted here enter the running pool's queue.
pub struct JobSink<'env, T> {
    buffered: Vec<Job<'env, T>>,
}

impl<'env, T> JobSink<'env, T> {
    /// Queues a follow-up job.  It becomes runnable as soon as the
    /// completion handler returns.
    pub fn submit(&mut self, job: Job<'env, T>) {
        self.buffered.push(job);
    }

    /// Queues a whole round of follow-up jobs; continuation schedulers that
    /// build rounds as batches (e.g. the adaptive Monte-Carlo engine) submit
    /// them in one call.  Equivalent to calling [`submit`] for each job in
    /// order.
    ///
    /// [`submit`]: JobSink::submit
    pub fn submit_all(&mut self, jobs: impl IntoIterator<Item = Job<'env, T>>) {
        self.buffered.extend(jobs);
    }
}

impl<T> std::fmt::Debug for JobSink<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSink")
            .field("buffered", &self.buffered.len())
            .finish()
    }
}

/// Submission handle of [`WorkPool::run_jobs_observed`]: like [`JobSink`],
/// but every submitted continuation is counted and time-stamped so its
/// queue-wait span starts at submission.
pub struct ObservedSink<'scope, 'env, T> {
    inner: &'scope mut JobSink<'env, (T, u64, u64)>,
    clock: &'env dyn Clock,
    submitted: u64,
}

impl<'scope, 'env, T: Send + 'env> ObservedSink<'scope, 'env, T> {
    /// Queues a follow-up job (see [`JobSink::submit`]).
    pub fn submit(&mut self, job: Job<'env, T>) {
        self.submitted += 1;
        self.inner.submit(wrap_job(job, self.clock));
    }

    /// Queues a whole round of follow-up jobs (see [`JobSink::submit_all`]).
    pub fn submit_all(&mut self, jobs: impl IntoIterator<Item = Job<'env, T>>) {
        for job in jobs {
            self.submit(job);
        }
    }
}

impl<T> std::fmt::Debug for ObservedSink<'_, '_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObservedSink")
            .field("submitted", &self.submitted)
            .finish()
    }
}

/// Wraps a job so it reports `(value, wait_ns, run_ns)`: the submission
/// timestamp is captured here (call time == enqueue time for both initial
/// jobs and continuations), the start/end stamps on the executing worker.
fn wrap_job<'env, T: Send + 'env>(
    job: Job<'env, T>,
    clock: &'env dyn Clock,
) -> Job<'env, (T, u64, u64)> {
    let submit_ns = clock.now_ns();
    let Job { id, work } = job;
    Job::new(id, move || {
        let start_ns = clock.now_ns();
        let value = work();
        let end_ns = clock.now_ns();
        (
            value,
            start_ns.saturating_sub(submit_ns),
            end_ns.saturating_sub(start_ns),
        )
    })
}

/// State shared between the coordinator and the workers of one
/// [`WorkPool::run_jobs`] call.
struct JobQueue<'env, T> {
    state: Mutex<JobQueueState<'env, T>>,
    ready: Condvar,
}

struct JobQueueState<'env, T> {
    pending: VecDeque<Job<'env, T>>,
    closed: bool,
}

/// Closes the queue on drop so workers blocked on the condvar exit even if
/// the coordinator unwinds; otherwise the scope join would deadlock.
struct CloseGuard<'queue, 'env, T> {
    queue: &'queue JobQueue<'env, T>,
}

impl<T> Drop for CloseGuard<'_, '_, T> {
    fn drop(&mut self) {
        if let Ok(mut state) = self.queue.state.lock() {
            state.closed = true;
        }
        self.queue.ready.notify_all();
    }
}

/// A fixed-size scoped worker pool executing indexed task sets with
/// index-order (deterministic) merging.  See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    workers: usize,
}

impl WorkPool {
    /// Creates a pool that will use `workers` threads per run; `0` means one
    /// per available core.  Construction is free — threads are scoped to
    /// each `run_*` call.
    pub const fn new(workers: usize) -> Self {
        WorkPool { workers }
    }

    /// The configured worker count (`0` = per core), as given to [`new`].
    ///
    /// [`new`]: WorkPool::new
    pub const fn requested_workers(&self) -> usize {
        self.workers
    }

    /// The number of threads a run over `tasks` concurrent tasks will use:
    /// the configured count (or one per core for `0`), clamped to the task
    /// count so no thread is spawned just to find an empty queue.
    pub fn effective_workers(&self, tasks: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.workers
        };
        requested.clamp(1, tasks.max(1))
    }

    /// Executes `count` independent tasks and returns their results in
    /// **index order** regardless of completion order or worker count.
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    pub fn run_indexed<T, F>(&self, count: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_indexed_with(count, task, |_, _| {})
    }

    /// Like [`run_indexed`], but additionally invokes `on_done` from the
    /// calling thread as each task finishes (**completion order**), so
    /// callers can stream progress while the set is still running.
    ///
    /// [`run_indexed`]: WorkPool::run_indexed
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    pub fn run_indexed_with<T, F, C>(&self, count: usize, task: F, on_done: C) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, &T),
    {
        self.run_indexed_inner(count, task, on_done, None)
    }

    /// Like [`run_indexed_with`], but additionally collects pool
    /// observability into `obs`: task totals, per-worker completion counts
    /// and per-task run spans measured with the injected `clock`.
    ///
    /// [`run_indexed_with`]: WorkPool::run_indexed_with
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing task on the calling thread.
    pub fn run_indexed_observed<T, F, C>(
        &self,
        count: usize,
        task: F,
        mut on_done: C,
        clock: &dyn Clock,
        obs: &mut PoolObs,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, &T),
    {
        if count == 0 {
            return Vec::new();
        }
        let probe = WorkerProbe::new(self.effective_workers(count));
        // The whole indexed set is "submitted" at t0, so a task's wait span
        // is simply how long it sat before a worker picked it up.
        let t0 = clock.now_ns();
        obs.tasks += count as u64;
        obs.queue_high_water = obs.queue_high_water.max(count as u64);
        let mut wait = TimingStat::new();
        let mut run = TimingStat::new();
        let results = self.run_indexed_inner(
            count,
            |index| {
                let start = clock.now_ns();
                let value = task(index);
                let end = clock.now_ns();
                (value, start.saturating_sub(t0), end.saturating_sub(start))
            },
            |index, timed: &(T, u64, u64)| {
                wait.record(timed.1);
                run.record(timed.2);
                on_done(index, &timed.0);
            },
            Some(&probe),
        );
        obs.wait.merge(&wait);
        obs.run.merge(&run);
        probe.fold_into(&mut obs.per_worker_tasks);
        results.into_iter().map(|(value, _, _)| value).collect()
    }

    fn run_indexed_inner<T, F, C>(
        &self,
        count: usize,
        task: F,
        mut on_done: C,
        probe: Option<&WorkerProbe>,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(usize, &T),
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.effective_workers(count);
        if workers == 1 {
            return (0..count)
                .map(|index| {
                    let result = task(index);
                    if let Some(p) = probe {
                        p.mark(0);
                    }
                    on_done(index, &result);
                    result
                })
                .collect();
        }

        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::new();
        slots.resize_with(count, || None);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            // Owned by the scope closure so an unwind drops it *before* the
            // scope joins: pending sends then fail and workers exit early
            // instead of finishing the whole remaining task set.
            let rx = rx;
            for worker in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let task = &task;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= count {
                        return;
                    }
                    let result = catch_unwind(AssertUnwindSafe(|| task(index)));
                    if let Some(p) = probe {
                        p.mark(worker);
                    }
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);
            for _ in 0..count {
                let (index, result) = rx.recv().expect("pool workers exited early");
                match result {
                    Ok(value) => {
                        on_done(index, &value);
                        slots[index] = Some(value);
                    }
                    Err(payload) => {
                        // Stop handing out new indices, then unwind; the
                        // dropped `rx` makes in-flight sends fail so the
                        // scope join returns promptly.
                        next.store(count, Ordering::Relaxed);
                        resume_unwind(payload)
                    }
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every task completes exactly once"))
            .collect()
    }

    /// Executes a *dynamic* job set: starts with `initial`, and after each
    /// job finishes calls `on_complete(id, result, sink)` on the calling
    /// thread (completion order), which may [`submit`] follow-up jobs into
    /// the running pool.  Returns once every job (initial and submitted) has
    /// completed and been handed to `on_complete`.
    ///
    /// Determinism is the caller's half of the contract: merge results by
    /// `id` (not arrival order) and derive follow-up jobs only from merged
    /// state, and the outcome is independent of the worker count.
    ///
    /// [`submit`]: JobSink::submit
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing job on the calling thread.
    pub fn run_jobs<'env, T, F>(&self, initial: Vec<Job<'env, T>>, on_complete: F)
    where
        T: Send,
        F: FnMut(usize, T, &mut JobSink<'env, T>),
    {
        self.run_jobs_inner(initial, on_complete, None);
    }

    /// Like [`run_jobs`], but additionally collects pool observability into
    /// `obs`: task/continuation totals, the in-flight high-water mark,
    /// per-worker completion counts, and per-job wait/run spans measured
    /// with the injected `clock` (submission time is captured when a job
    /// enters the queue, including continuations submitted through the
    /// [`ObservedSink`]).
    ///
    /// [`run_jobs`]: WorkPool::run_jobs
    ///
    /// # Panics
    ///
    /// Re-raises the panic of the first failing job on the calling thread.
    pub fn run_jobs_observed<'env, T, F>(
        &self,
        initial: Vec<Job<'env, T>>,
        mut on_complete: F,
        clock: &'env dyn Clock,
        obs: &mut PoolObs,
    ) where
        T: Send + 'env,
        F: FnMut(usize, T, &mut ObservedSink<'_, 'env, T>),
    {
        if initial.is_empty() {
            return;
        }
        let probe = WorkerProbe::new(self.effective_workers(initial.len()));
        let mut in_flight = initial.len() as u64;
        let mut high_water = in_flight;
        let mut tasks = in_flight;
        let mut continuations = 0u64;
        let mut wait = TimingStat::new();
        let mut run = TimingStat::new();
        let wrapped: Vec<Job<'env, (T, u64, u64)>> = initial
            .into_iter()
            .map(|job| wrap_job(job, clock))
            .collect();
        self.run_jobs_inner(
            wrapped,
            |id, (value, wait_ns, run_ns), sink| {
                wait.record(wait_ns);
                run.record(run_ns);
                in_flight -= 1;
                let mut observed = ObservedSink {
                    inner: sink,
                    clock,
                    submitted: 0,
                };
                on_complete(id, value, &mut observed);
                let submitted = observed.submitted;
                continuations += submitted;
                tasks += submitted;
                in_flight += submitted;
                high_water = high_water.max(in_flight);
            },
            Some(&probe),
        );
        obs.tasks += tasks;
        obs.continuations += continuations;
        obs.queue_high_water = obs.queue_high_water.max(high_water);
        obs.wait.merge(&wait);
        obs.run.merge(&run);
        probe.fold_into(&mut obs.per_worker_tasks);
    }

    fn run_jobs_inner<'env, T, F>(
        &self,
        initial: Vec<Job<'env, T>>,
        mut on_complete: F,
        probe: Option<&WorkerProbe>,
    ) where
        T: Send,
        F: FnMut(usize, T, &mut JobSink<'env, T>),
    {
        if initial.is_empty() {
            return;
        }
        let workers = self.effective_workers(initial.len());
        if workers == 1 {
            let mut pending: VecDeque<Job<'env, T>> = initial.into();
            while let Some(job) = pending.pop_front() {
                let result = (job.work)();
                if let Some(p) = probe {
                    p.mark(0);
                }
                let mut sink = JobSink {
                    buffered: Vec::new(),
                };
                on_complete(job.id, result, &mut sink);
                pending.extend(sink.buffered);
            }
            return;
        }

        let mut outstanding = initial.len();
        let queue = JobQueue {
            state: Mutex::new(JobQueueState {
                pending: initial.into(),
                closed: false,
            }),
            ready: Condvar::new(),
        };
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            let _guard = CloseGuard { queue: &queue };
            // Owned by the scope closure so an unwind drops it *before* the
            // scope joins: pending sends then fail and workers exit early.
            let rx = rx;
            for worker in 0..workers {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || loop {
                    let job = {
                        let mut state = queue.state.lock().expect("job queue poisoned");
                        loop {
                            if let Some(job) = state.pending.pop_front() {
                                break Some(job);
                            }
                            if state.closed {
                                break None;
                            }
                            state = queue.ready.wait(state).expect("job queue poisoned");
                        }
                    };
                    let Some(job) = job else { return };
                    let result = catch_unwind(AssertUnwindSafe(job.work));
                    if let Some(p) = probe {
                        p.mark(worker);
                    }
                    if tx.send((job.id, result)).is_err() {
                        return;
                    }
                });
            }
            drop(tx);
            while outstanding > 0 {
                let (id, result) = rx.recv().expect("pool workers exited early");
                outstanding -= 1;
                match result {
                    Ok(value) => {
                        let mut sink = JobSink {
                            buffered: Vec::new(),
                        };
                        on_complete(id, value, &mut sink);
                        if !sink.buffered.is_empty() {
                            outstanding += sink.buffered.len();
                            let mut state = queue.state.lock().expect("job queue poisoned");
                            state.pending.extend(sink.buffered);
                            drop(state);
                            queue.ready.notify_all();
                        }
                    }
                    Err(payload) => {
                        // Cancel the queued work, then unwind: `_guard`
                        // closes the (now empty) queue and the dropped `rx`
                        // makes in-flight sends fail, so the scope join
                        // returns promptly instead of draining every job.
                        if let Ok(mut state) = queue.state.lock() {
                            state.pending.clear();
                        }
                        resume_unwind(payload)
                    }
                }
            }
            // `_guard` drops here: closes the queue and wakes idle workers
            // so the scope join returns.
        });
    }
}

impl Default for WorkPool {
    /// One worker per available core.
    fn default() -> Self {
        WorkPool::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn results_arrive_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 8] {
            let out = WorkPool::new(workers).run_indexed(17, |i| 3 * i + 1);
            assert_eq!(out, (0..17).map(|i| 3 * i + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn out_of_order_completion_still_merges_in_index_order() {
        // Low indices sleep longest, so with 8 workers the completion order
        // is (almost surely) not the index order; the merged result must be
        // index-ordered regardless, and the completion callback must see
        // every index exactly once.  Scheduling jitter could still complete
        // a run in index order, so retry a few times until an out-of-order
        // run is observed — every attempt must merge correctly either way.
        let count = 8;
        let mut observed_out_of_order = false;
        for _ in 0..5 {
            let mut completion_order = Vec::new();
            let out = WorkPool::new(count).run_indexed_with(
                count,
                |i| {
                    std::thread::sleep(Duration::from_millis(10 * (count - i) as u64));
                    i * i
                },
                |i, &value| {
                    assert_eq!(value, i * i);
                    completion_order.push(i);
                },
            );
            assert_eq!(out, (0..count).map(|i| i * i).collect::<Vec<_>>());
            let mut seen = completion_order.clone();
            seen.sort_unstable();
            assert_eq!(seen, (0..count).collect::<Vec<_>>());
            if completion_order.windows(2).any(|w| w[0] > w[1]) {
                observed_out_of_order = true;
                break;
            }
        }
        assert!(
            observed_out_of_order,
            "staggered sleeps never completed out of order in 5 attempts"
        );
    }

    #[test]
    fn zero_tasks_run_nowhere() {
        let out: Vec<u32> = WorkPool::new(4).run_indexed(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn effective_workers_clamps_to_tasks_and_resolves_per_core() {
        assert_eq!(WorkPool::new(64).effective_workers(7), 7);
        assert_eq!(WorkPool::new(3).effective_workers(100), 3);
        assert_eq!(WorkPool::new(5).effective_workers(0), 1);
        assert!(WorkPool::default().effective_workers(100) >= 1);
        assert_eq!(WorkPool::new(2).requested_workers(), 2);
    }

    #[test]
    fn continuation_jobs_run_until_the_handler_stops_submitting() {
        // Each of 4 job ids runs 3 "rounds"; the handler submits the next
        // round on completion of the previous one.  Every round increments
        // the id's counter, so the final counters prove each continuation
        // ran exactly once, at any worker count.
        for workers in [1, 2, 8] {
            let mut rounds = [0usize; 4];
            let initial = (0..4).map(|id| Job::new(id, move || id)).collect();
            WorkPool::new(workers).run_jobs(initial, |id, value, sink| {
                assert_eq!(value, id);
                rounds[id] += 1;
                if rounds[id] < 3 {
                    sink.submit(Job::new(id, move || id));
                }
            });
            assert_eq!(rounds, [3; 4], "workers = {workers}");
        }
    }

    #[test]
    fn job_ids_are_opaque_and_echoed_back() {
        let job = Job::new(42, || "x");
        assert_eq!(job.id(), 42);
        let mut seen = Vec::new();
        WorkPool::new(1).run_jobs(vec![job], |id, value, _| seen.push((id, value)));
        assert_eq!(seen, vec![(42, "x")]);
    }

    #[test]
    fn jobs_may_borrow_the_environment() {
        let data = [1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        let initial = data
            .iter()
            .enumerate()
            .map(|(i, value)| Job::new(i, move || *value))
            .collect();
        WorkPool::new(2).run_jobs(initial, |_, value, _| {
            total.fetch_add(value as usize, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn observed_indexed_run_counts_every_task_once() {
        use fec_obs::ManualClock;
        for workers in [1, 2, 8] {
            let clock = ManualClock::new();
            let mut obs = PoolObs::new();
            let out = WorkPool::new(workers).run_indexed_observed(
                10,
                |i| i + 1,
                |_, _| {},
                &clock,
                &mut obs,
            );
            assert_eq!(out, (1..=10).collect::<Vec<_>>());
            assert_eq!(obs.tasks, 10, "workers = {workers}");
            assert_eq!(obs.continuations, 0);
            assert_eq!(obs.queue_high_water, 10);
            assert_eq!(
                obs.per_worker_tasks.iter().sum::<u64>(),
                10,
                "workers = {workers}"
            );
            assert_eq!(obs.run.count, 10);
        }
    }

    #[test]
    fn observed_jobs_count_continuations_and_keep_merge_contract() {
        use fec_obs::ManualClock;
        for workers in [1, 2, 8] {
            let clock = ManualClock::new();
            let mut obs = PoolObs::new();
            let mut rounds = [0usize; 4];
            let initial = (0..4).map(|id| Job::new(id, move || id)).collect();
            WorkPool::new(workers).run_jobs_observed(
                initial,
                |id, value, sink| {
                    assert_eq!(value, id);
                    rounds[id] += 1;
                    if rounds[id] < 3 {
                        sink.submit(Job::new(id, move || id));
                    }
                },
                &clock,
                &mut obs,
            );
            assert_eq!(rounds, [3; 4], "workers = {workers}");
            // 4 initial + 8 continuations, independent of the worker count:
            // the deterministic half of the observability contract.
            assert_eq!(obs.tasks, 12, "workers = {workers}");
            assert_eq!(obs.continuations, 8, "workers = {workers}");
            assert!(obs.queue_high_water >= 1);
            assert_eq!(obs.per_worker_tasks.iter().sum::<u64>(), 12);
        }
    }

    #[test]
    fn observed_spans_use_the_injected_clock() {
        use fec_obs::{Class, ManualClock, MetricValue, Registry};
        let clock = ManualClock::new();
        let mut obs = PoolObs::new();
        let initial = vec![Job::new(0, || {
            // Runs on the single worker; the clock only moves when we say so.
            7usize
        })];
        WorkPool::new(1).run_jobs_observed(initial, |_, _, _| {}, &clock, &mut obs);
        assert_eq!(obs.run.count, 1);
        assert_eq!(obs.run.total_ns, 0, "manual clock never advanced");

        let mut reg = Registry::new();
        obs.record_into(&mut reg, "pool");
        assert_eq!(reg.counter("pool.tasks"), Some(1));
        assert!(matches!(
            reg.get("pool.queue_depth_hw").map(|m| (&m.value, m.class)),
            Some((MetricValue::Gauge(_), Class::Execution))
        ));
        assert!(reg.get("pool.task_run_ns").is_some());
    }

    #[test]
    #[should_panic(expected = "task 3 exploded")]
    fn task_panics_propagate_to_the_caller() {
        WorkPool::new(4).run_indexed(8, |i| {
            if i == 3 {
                panic!("task 3 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "job exploded")]
    fn job_panics_propagate_without_deadlocking_the_pool() {
        let initial = (0..8)
            .map(|id| {
                Job::new(id, move || {
                    if id == 5 {
                        panic!("job exploded");
                    }
                    id
                })
            })
            .collect();
        WorkPool::new(4).run_jobs(initial, |_, _, _| {});
    }
}
