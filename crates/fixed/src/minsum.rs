//! Saturating fixed-point message arithmetic for the normalized-min-sum
//! check-node update (Eq. (11) of the paper).
//!
//! The hardware datapath never touches floating point: channel LLRs enter as
//! `lambda_bits`-bit integers (see [`crate::Quantizer`]), the `Q_lk = lambda -
//! R_lk` subtraction saturates at the register width, the two-minimum
//! magnitude is scaled by the hardware-friendly factor `3/4` with a single
//! shift-add, and the resulting `R_lk` is saturated to `r_bits` bits before
//! being written back to the message memory.  [`MinSumArith`] models exactly
//! that pipeline; `wimax_ldpc::decoder::FixedLayeredDecoder` is built on it.
//!
//! All values are plain integers in units of one LSB (`2^-frac_bits` in real
//! terms); the fractional position only matters when converting to or from
//! floating point, which this module never does.
//!
//! # Example
//!
//! ```
//! use fec_fixed::minsum::MinSumArith;
//!
//! let a = MinSumArith::new(7, 7);
//! assert_eq!(a.q_message(60, -10), 63);      // saturates at the 7-bit rail
//! assert_eq!(a.scale_magnitude(8), 6);       // 3/4 scaling, round to nearest
//! assert_eq!(a.r_message(8, true), -6);
//! assert_eq!(a.lambda_update(-62, -6), -64); // saturates at the negative rail
//! ```

use crate::SatFixed;

/// Numerator of the fixed normalization factor `sigma = 3/4` of Eq. (11).
pub const NMS_SCALE_NUM: i32 = 3;

/// Shift implementing the division of the normalization factor (`>> 2`).
pub const NMS_SCALE_SHIFT: u32 = 2;

/// Saturating integer arithmetic for normalized-min-sum messages at fixed
/// register widths.
///
/// `lambda_bits` is the width of the bit-LLR registers (`lambda`, `Q_lk`),
/// `r_bits` the width of the check-to-variable message memory (`R_lk`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinSumArith {
    lambda_min: i32,
    lambda_max: i32,
    r_max: i32,
}

impl MinSumArith {
    /// Creates the arithmetic model for the given register widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is outside `2..=15` (values must fit an `i16`
    /// datapath with headroom for the intermediate `i32` sums).
    pub fn new(lambda_bits: u32, r_bits: u32) -> Self {
        assert!(
            (2..=15).contains(&lambda_bits),
            "lambda bit width must be in 2..=15"
        );
        assert!((2..=15).contains(&r_bits), "R bit width must be in 2..=15");
        MinSumArith {
            lambda_min: SatFixed::min_value(lambda_bits),
            lambda_max: SatFixed::max_value(lambda_bits),
            r_max: SatFixed::max_value(r_bits),
        }
    }

    /// Largest representable bit-LLR value.
    pub fn lambda_max(&self) -> i32 {
        self.lambda_max
    }

    /// Smallest representable bit-LLR value.
    pub fn lambda_min(&self) -> i32 {
        self.lambda_min
    }

    /// Largest representable `R_lk` magnitude (sign-magnitude datapath: the
    /// negative rail is `-r_max`, keeping the message symmetric).
    pub fn r_max(&self) -> i32 {
        self.r_max
    }

    /// `Q_lk = lambda - R_lk`, saturated to the bit-LLR register width
    /// (Eq. (6)).
    #[inline]
    pub fn q_message(&self, lambda: i32, r: i32) -> i16 {
        (lambda - r).clamp(self.lambda_min, self.lambda_max) as i16
    }

    /// The `3/4` normalization of Eq. (11) as the hardware computes it: one
    /// shift-add with round-to-nearest (`(3·m + 2) >> 2`).
    #[inline]
    pub fn scale_magnitude(&self, magnitude: i32) -> i32 {
        debug_assert!(magnitude >= 0);
        (NMS_SCALE_NUM * magnitude + (1 << (NMS_SCALE_SHIFT - 1))) >> NMS_SCALE_SHIFT
    }

    /// Builds the outgoing `R_lk` from a two-minimum magnitude and the
    /// excluded sign: scaled by `3/4`, saturated to the message width.
    #[inline]
    pub fn r_message(&self, magnitude: i32, negative: bool) -> i16 {
        let mag = self.scale_magnitude(magnitude).min(self.r_max);
        (if negative { -mag } else { mag }) as i16
    }

    /// `lambda = Q_lk + R_lk(new)`, saturated to the bit-LLR register width
    /// (Eq. (10)).
    #[inline]
    pub fn lambda_update(&self, q: i32, r_new: i32) -> i16 {
        (q + r_new).clamp(self.lambda_min, self.lambda_max) as i16
    }

    /// True when `Q_lk = lambda - R_lk` hits a saturation rail — the
    /// observability predicate matching [`q_message`](MinSumArith::q_message)
    /// exactly, kept separate so the hot path only evaluates it when a
    /// recorder is enabled.
    #[inline]
    pub fn q_saturates(&self, lambda: i32, r: i32) -> bool {
        let raw = lambda - r;
        raw < self.lambda_min || raw > self.lambda_max
    }

    /// True when the scaled two-minimum magnitude clips at the `R_lk`
    /// message-memory rail (the `.min(r_max)` inside
    /// [`r_message`](MinSumArith::r_message)).
    #[inline]
    pub fn r_clips(&self, magnitude: i32) -> bool {
        self.scale_magnitude(magnitude) > self.r_max
    }

    /// True when `lambda = Q_lk + R_lk(new)` hits a saturation rail
    /// (matching [`lambda_update`](MinSumArith::lambda_update)).
    #[inline]
    pub fn lambda_saturates(&self, q: i32, r_new: i32) -> bool {
        let raw = q + r_new;
        raw < self.lambda_min || raw > self.lambda_max
    }

    /// Lane (struct-of-arrays) form of [`q_message`](MinSumArith::q_message):
    /// `q[f] = sat(lambda[f] - r[f])` for every frame lane `f` of a batch.
    ///
    /// All three slices index the *same* `[edge][frame]` batch position, so
    /// the loop is a tight element-wise pass over `B` contiguous lanes —
    /// the natural SIMD axis of the lockstep batch decoder.  The `i16`
    /// subtraction cannot overflow for legal register widths (`<= 15` bits
    /// means `|lambda - r| <= 32766`), so `saturating_sub` + clamp is
    /// bit-identical to the widening scalar path.
    ///
    /// With the `simd` cargo feature the loop runs on explicit
    /// `std::simd` lanes; the default scalar form autovectorizes.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn q_message_lanes(&self, q: &mut [i16], lambda: &[i16], r: &[i16]) {
        assert_eq!(q.len(), lambda.len());
        assert_eq!(q.len(), r.len());
        let (lo, hi) = (self.lambda_min as i16, self.lambda_max as i16);
        #[cfg(feature = "simd")]
        {
            simd_lanes::q_message(q, lambda, r, lo, hi);
        }
        #[cfg(not(feature = "simd"))]
        for ((qf, &lf), &rf) in q.iter_mut().zip(lambda).zip(r) {
            *qf = lf.saturating_sub(rf).clamp(lo, hi);
        }
    }

    /// Lane form of the magnitude half of
    /// [`r_message`](MinSumArith::r_message): `out[f] =
    /// min(scale_magnitude(mins[f]), r_max)` for every lane, leaving the
    /// per-position sign application to the caller (the sign depends on the
    /// excluded input, not only on the lane).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ or any input magnitude is
    /// negative (debug builds).
    #[inline]
    pub fn scaled_magnitude_lanes(&self, out: &mut [i16], mins: &[i16]) {
        assert_eq!(out.len(), mins.len());
        let r_max = self.r_max;
        for (of, &mf) in out.iter_mut().zip(mins) {
            debug_assert!(mf >= 0);
            *of = (((NMS_SCALE_NUM * i32::from(mf) + (1 << (NMS_SCALE_SHIFT - 1)))
                >> NMS_SCALE_SHIFT)
                .min(r_max)) as i16;
        }
    }

    /// Lane form of [`lambda_update`](MinSumArith::lambda_update):
    /// `lambda[f] = sat(q[f] + r_new[f])` for every frame lane.
    ///
    /// Like the other lane ops, the `i16` saturating add followed by the
    /// register clamp is bit-identical to the scalar `i32` path for every
    /// legal register width (≤ 15 bits: `|q + r|` ≤ 32766 never wraps).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn lambda_update_lanes(&self, lambda: &mut [i16], q: &[i16], r_new: &[i16]) {
        assert_eq!(lambda.len(), q.len());
        assert_eq!(lambda.len(), r_new.len());
        let (lo, hi) = (self.lambda_min as i16, self.lambda_max as i16);
        #[cfg(feature = "simd")]
        {
            simd_lanes::lambda_update(lambda, q, r_new, lo, hi);
        }
        #[cfg(not(feature = "simd"))]
        for ((lf, &qf), &rf) in lambda.iter_mut().zip(q).zip(r_new) {
            *lf = qf.saturating_add(rf).clamp(lo, hi);
        }
    }
}

/// Explicit `std::simd` implementations of the lane ops (the `simd` cargo
/// feature, nightly toolchains only).  Scalar tails cover lane counts that
/// are not a multiple of the vector width.
#[cfg(feature = "simd")]
mod simd_lanes {
    use std::simd::cmp::SimdOrd;
    use std::simd::num::SimdInt;
    use std::simd::Simd;

    /// Vector width: 8 × i16 = 128 bits, available everywhere.
    const W: usize = 8;

    pub fn q_message(q: &mut [i16], lambda: &[i16], r: &[i16], lo: i16, hi: i16) {
        let lov = Simd::<i16, W>::splat(lo);
        let hiv = Simd::<i16, W>::splat(hi);
        let mut i = 0;
        while i + W <= q.len() {
            let lf = Simd::<i16, W>::from_slice(&lambda[i..i + W]);
            let rf = Simd::<i16, W>::from_slice(&r[i..i + W]);
            let qf = lf.saturating_sub(rf).simd_clamp(lov, hiv);
            qf.copy_to_slice(&mut q[i..i + W]);
            i += W;
        }
        for f in i..q.len() {
            q[f] = lambda[f].saturating_sub(r[f]).clamp(lo, hi);
        }
    }

    pub fn lambda_update(lambda: &mut [i16], q: &[i16], r_new: &[i16], lo: i16, hi: i16) {
        let lov = Simd::<i16, W>::splat(lo);
        let hiv = Simd::<i16, W>::splat(hi);
        let mut i = 0;
        while i + W <= lambda.len() {
            let qf = Simd::<i16, W>::from_slice(&q[i..i + W]);
            let rf = Simd::<i16, W>::from_slice(&r_new[i..i + W]);
            let lf = qf.saturating_add(rf).simd_clamp(lov, hiv);
            lf.copy_to_slice(&mut lambda[i..i + W]);
            i += W;
        }
        for f in i..lambda.len() {
            lambda[f] = q[f].saturating_add(r_new[f]).clamp(lo, hi);
        }
    }
}

impl Default for MinSumArith {
    /// The paper's widths: 7-bit bit LLRs, with the full-width `R` memory the
    /// BER studies default to (use [`MinSumArith::new`] with
    /// [`crate::R_BITS`] for the compressed 5-bit message memory).
    fn default() -> Self {
        MinSumArith::new(crate::LAMBDA_BITS, crate::LAMBDA_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn q_message_saturates_at_both_rails() {
        let a = MinSumArith::new(7, 7);
        assert_eq!(a.q_message(63, -63), 63);
        assert_eq!(a.q_message(-64, 63), -64);
        assert_eq!(a.q_message(10, 3), 7);
    }

    #[test]
    fn scaling_rounds_to_nearest() {
        let a = MinSumArith::new(7, 7);
        // 3/4 of 1, 2, 3, 4 = 0.75, 1.5, 2.25, 3 -> 1, 2, 2, 3
        assert_eq!(a.scale_magnitude(1), 1);
        assert_eq!(a.scale_magnitude(2), 2);
        assert_eq!(a.scale_magnitude(3), 2);
        assert_eq!(a.scale_magnitude(4), 3);
        assert_eq!(a.scale_magnitude(0), 0);
    }

    #[test]
    fn r_message_saturates_to_message_width() {
        let a = MinSumArith::new(7, 5);
        // 3/4 of 63 = 47, saturated to the 5-bit magnitude 15.
        assert_eq!(a.r_message(63, false), 15);
        assert_eq!(a.r_message(63, true), -15);
        assert_eq!(a.r_message(4, true), -3);
    }

    #[test]
    fn default_matches_paper_lambda_width() {
        let a = MinSumArith::default();
        assert_eq!(a.lambda_max(), 63);
        assert_eq!(a.lambda_min(), -64);
        assert_eq!(a.r_max(), 63);
    }

    #[test]
    fn saturation_predicates_match_the_ops() {
        let a = MinSumArith::new(7, 5);
        for lambda in -70..=70 {
            for r in -15..=15 {
                let clamped = i32::from(a.q_message(lambda, r)) != lambda - r;
                assert_eq!(a.q_saturates(lambda, r), clamped, "({lambda}, {r})");
                let l = i32::from(a.lambda_update(lambda.clamp(-64, 63), r))
                    != lambda.clamp(-64, 63) + r;
                assert_eq!(a.lambda_saturates(lambda.clamp(-64, 63), r), l);
            }
        }
        for mag in 0..=63 {
            let clipped = i32::from(a.r_message(mag, false)) != a.scale_magnitude(mag);
            assert_eq!(a.r_clips(mag), clipped, "magnitude {mag}");
        }
    }

    #[test]
    #[should_panic(expected = "lambda bit width")]
    fn too_wide_lambda_panics() {
        let _ = MinSumArith::new(16, 7);
    }

    #[test]
    fn lane_ops_match_the_scalar_ops_elementwise() {
        // Width 15 exercises the widest legal registers: the i16 lane
        // subtraction must still agree with the widening scalar path.
        for (lambda_bits, r_bits) in [(7, 7), (7, 5), (15, 15)] {
            let a = MinSumArith::new(lambda_bits, r_bits);
            let lo = a.lambda_min() as i16;
            let hi = a.lambda_max() as i16;
            let lambda: Vec<i16> = (0..13).map(|i| (i * 2731 - 16000) as i16).collect();
            let r: Vec<i16> = (0..13)
                .map(|i| ((i * 1931) % 32000 - 16000) as i16)
                .collect();
            let r: Vec<i16> = r.iter().map(|&v| v.clamp(-hi, hi)).collect();
            let mut q = vec![0i16; 13];
            let lambda: Vec<i16> = lambda.iter().map(|&v| v.clamp(lo, hi)).collect();
            a.q_message_lanes(&mut q, &lambda, &r);
            for f in 0..13 {
                assert_eq!(
                    q[f],
                    a.q_message(i32::from(lambda[f]), i32::from(r[f])),
                    "lane {f} at widths ({lambda_bits}, {r_bits})"
                );
            }

            let mins: Vec<i16> = (0..13)
                .map(|i| ((i * 1261) % i32::from(hi)) as i16)
                .collect();
            let mut out = vec![0i16; 13];
            a.scaled_magnitude_lanes(&mut out, &mins);
            for f in 0..13 {
                assert_eq!(
                    out[f],
                    a.r_message(i32::from(mins[f]), false),
                    "lane {f} at widths ({lambda_bits}, {r_bits})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn mismatched_lane_lengths_panic() {
        let a = MinSumArith::default();
        let mut q = vec![0i16; 4];
        a.q_message_lanes(&mut q, &[0; 3], &[0; 4]);
    }

    /// Floating-point reference of the same message chain, quantized back to
    /// the integer grid with round-half-away-from-zero (matching
    /// `f64::round`).
    fn float_reference_r(magnitude: i32, negative: bool, r_max: i32) -> f64 {
        let mag = (0.75 * f64::from(magnitude)).round().min(f64::from(r_max));
        if negative {
            -mag
        } else {
            mag
        }
    }

    proptest! {
        /// Satellite regression: the saturating integer min-sum arithmetic
        /// matches the f64 reference within one LSB for in-range inputs.
        #[test]
        fn r_message_matches_f64_reference_within_one_lsb(
            magnitude in 0i32..=63,
            neg in 0u8..=1,
            r_bits in 2u32..=7,
        ) {
            let negative = neg == 1;
            let a = MinSumArith::new(7, r_bits);
            let fixed = f64::from(a.r_message(magnitude, negative));
            let reference = float_reference_r(magnitude, negative, a.r_max());
            prop_assert!(
                (fixed - reference).abs() <= 1.0,
                "fixed {fixed} vs reference {reference} for magnitude {magnitude}"
            );
        }

        /// Q and lambda updates are exact integer arithmetic up to the
        /// saturation rails, so they agree with the clamped f64 reference
        /// exactly.
        #[test]
        fn q_and_lambda_updates_match_clamped_f64(
            lambda in -200i32..=200,
            r in -63i32..=63,
            r_new in -63i32..=63,
        ) {
            let a = MinSumArith::new(7, 7);
            let q = a.q_message(lambda, r);
            let q_ref = (f64::from(lambda) - f64::from(r)).clamp(-64.0, 63.0);
            prop_assert_eq!(f64::from(q), q_ref);
            let l = a.lambda_update(i32::from(q), r_new);
            let l_ref = (f64::from(q) + f64::from(r_new)).clamp(-64.0, 63.0);
            prop_assert_eq!(f64::from(l), l_ref);
        }

        /// The full check-node chain (Q -> scale -> R -> lambda) stays within
        /// one LSB of the f64 reference when nothing saturates.
        #[test]
        fn full_chain_within_one_lsb_when_in_range(
            lambda in -40i32..=40,
            r_old in -20i32..=20,
            min_mag in 0i32..=40,
            neg in 0u8..=1,
        ) {
            let negative = neg == 1;
            let a = MinSumArith::new(7, 7);
            let q = a.q_message(lambda, r_old);
            let r_new = a.r_message(min_mag, negative);
            let l = a.lambda_update(i32::from(q), i32::from(r_new));

            let q_ref = f64::from(lambda) - f64::from(r_old);
            let sign = if negative { -1.0 } else { 1.0 };
            let r_ref = sign * 0.75 * f64::from(min_mag);
            let l_ref = (q_ref + r_ref).clamp(-64.0, 63.0);
            prop_assert!(
                (f64::from(l) - l_ref).abs() <= 1.0,
                "lambda {l} vs reference {l_ref}"
            );
        }
    }
}
