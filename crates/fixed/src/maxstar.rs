//! The `max*` operator family used by Log-MAP / Max-Log-MAP BCJR decoding.
//!
//! The paper (Section II.A) implements `max*{x_i}` as `max{x_i}` followed by a
//! correction term stored in a small look-up table, and notes that the
//! correction can be omitted for double-binary turbo codes (Max-Log-MAP) with
//! minor BER degradation.

/// Exact Jacobian logarithm: `max*(a, b) = ln(e^a + e^b)`.
///
/// This is the reference implementation used to validate the LUT version and
/// to run full Log-MAP decoding.
///
/// # Example
///
/// ```
/// use fec_fixed::max_star_exact;
/// let v = max_star_exact(1.0, 1.0);
/// assert!((v - (1.0 + std::f64::consts::LN_2)).abs() < 1e-12);
/// ```
pub fn max_star_exact(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if !m.is_finite() {
        return m;
    }
    m + (-(a - b).abs()).exp().ln_1p()
}

/// Max-Log approximation: `max*(a, b) ~= max(a, b)`.
pub fn max_log(a: f64, b: f64) -> f64 {
    a.max(b)
}

/// Number of entries of the correction look-up table used by
/// [`max_star_lut`]; eight entries on the interval `[0, 4)` matches typical
/// hardware implementations (e.g. Papaharalabos et al., ref. [19] of the
/// paper).
pub const LUT_ENTRIES: usize = 8;

/// Upper bound of the LUT input range; differences beyond this contribute a
/// negligible correction.
pub const LUT_RANGE: f64 = 4.0;

fn lut_correction(delta: f64) -> f64 {
    debug_assert!(delta >= 0.0);
    if delta >= LUT_RANGE {
        return 0.0;
    }
    // Centre of the LUT bin, evaluated with the exact correction function.
    let step = LUT_RANGE / LUT_ENTRIES as f64;
    let idx = (delta / step) as usize;
    let centre = (idx as f64 + 0.5) * step;
    (-centre).exp().ln_1p()
}

/// LUT-corrected `max*`: `max(a, b) + lut(|a - b|)`.
///
/// The LUT has [`LUT_ENTRIES`] uniformly-spaced entries over `[0, LUT_RANGE)`,
/// as done in hardware Log-MAP SISOs.
pub fn max_star_lut(a: f64, b: f64) -> f64 {
    let m = a.max(b);
    if !m.is_finite() {
        return m;
    }
    m + lut_correction((a - b).abs())
}

/// Selects which flavour of the `max*` operator a decoder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MaxStarMode {
    /// Exact Jacobian logarithm (floating-point Log-MAP reference).
    Exact,
    /// Look-up-table corrected `max`, the hardware Log-MAP of ref. [19].
    Lut,
    /// Plain `max`, i.e. Max-Log-MAP (the paper's choice for double-binary
    /// turbo codes).
    #[default]
    MaxLog,
}

/// A reusable `max*` evaluator.
///
/// # Example
///
/// ```
/// use fec_fixed::{MaxStar, MaxStarMode};
///
/// let ms = MaxStar::new(MaxStarMode::MaxLog);
/// assert_eq!(ms.apply(1.0, 3.0), 3.0);
/// let all = ms.reduce([1.0, 3.0, 2.0]);
/// assert_eq!(all, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxStar {
    mode: MaxStarMode,
}

impl MaxStar {
    /// Creates an evaluator with the given mode.
    pub fn new(mode: MaxStarMode) -> Self {
        MaxStar { mode }
    }

    /// Returns the configured mode.
    pub fn mode(&self) -> MaxStarMode {
        self.mode
    }

    /// Applies the binary `max*` operator.
    pub fn apply(&self, a: f64, b: f64) -> f64 {
        match self.mode {
            MaxStarMode::Exact => max_star_exact(a, b),
            MaxStarMode::Lut => max_star_lut(a, b),
            MaxStarMode::MaxLog => max_log(a, b),
        }
    }

    /// Folds `max*` over an iterator of values.
    ///
    /// Returns negative infinity for an empty iterator, which is the identity
    /// element of `max*`.
    pub fn reduce<I>(&self, values: I) -> f64
    where
        I: IntoIterator<Item = f64>,
    {
        values
            .into_iter()
            .fold(f64::NEG_INFINITY, |acc, v| self.apply(acc, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_matches_closed_form() {
        let v = max_star_exact(0.0, 0.0);
        assert!((v - std::f64::consts::LN_2).abs() < 1e-12);
        let v = max_star_exact(5.0, -5.0);
        assert!((v - (5.0f64.exp() + (-5.0f64).exp()).ln()).abs() < 1e-9);
    }

    #[test]
    fn exact_handles_infinite_identity() {
        assert_eq!(max_star_exact(f64::NEG_INFINITY, 3.0), 3.0);
        assert_eq!(max_star_exact(3.0, f64::NEG_INFINITY), 3.0);
    }

    #[test]
    fn max_log_is_plain_max() {
        assert_eq!(max_log(-1.0, 2.0), 2.0);
        assert_eq!(max_log(4.0, 2.0), 4.0);
    }

    #[test]
    fn lut_close_to_exact() {
        for i in 0..100 {
            let a = i as f64 * 0.1 - 5.0;
            let b = -a * 0.3;
            let e = max_star_exact(a, b);
            let l = max_star_lut(a, b);
            // LUT quantization error is bounded by the bin width effect (< 0.3).
            assert!((e - l).abs() < 0.3, "a={a} b={b} exact={e} lut={l}");
        }
    }

    #[test]
    fn reduce_over_values() {
        let ms = MaxStar::new(MaxStarMode::Exact);
        let r = ms.reduce([0.0, 0.0, 0.0, 0.0]);
        assert!((r - (4.0f64).ln()).abs() < 1e-9);
        assert_eq!(ms.reduce(std::iter::empty()), f64::NEG_INFINITY);
    }

    #[test]
    fn mode_accessor() {
        assert_eq!(MaxStar::new(MaxStarMode::Lut).mode(), MaxStarMode::Lut);
        assert_eq!(MaxStar::default().mode(), MaxStarMode::MaxLog);
    }

    proptest! {
        #[test]
        fn exact_ge_max_and_bounded(a in -20.0f64..20.0, b in -20.0f64..20.0) {
            let e = max_star_exact(a, b);
            let m = a.max(b);
            prop_assert!(e >= m - 1e-12);
            prop_assert!(e <= m + std::f64::consts::LN_2 + 1e-12);
        }

        #[test]
        fn exact_is_commutative(a in -20.0f64..20.0, b in -20.0f64..20.0) {
            prop_assert!((max_star_exact(a, b) - max_star_exact(b, a)).abs() < 1e-12);
        }

        #[test]
        fn lut_between_max_and_exact_bound(a in -20.0f64..20.0, b in -20.0f64..20.0) {
            let l = max_star_lut(a, b);
            let m = a.max(b);
            prop_assert!(l >= m - 1e-12);
            prop_assert!(l <= m + std::f64::consts::LN_2 + 1e-12);
        }
    }
}
