//! Uniform LLR quantization with saturation accounting.

use crate::SatFixed;

/// Statistics accumulated while quantizing a stream of values.
///
/// Useful for choosing fractional bit allocations: a high saturation ratio
/// indicates the quantizer range is too small for the channel conditions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantStats {
    /// Number of values quantized so far.
    pub total: u64,
    /// Number of values that hit the positive or negative saturation rail.
    pub saturated: u64,
}

impl QuantStats {
    /// Fraction of quantized samples that saturated (0 when nothing was
    /// quantized yet).
    pub fn saturation_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.saturated as f64 / self.total as f64
        }
    }
}

/// A uniform mid-tread quantizer mapping floating-point LLRs to `bits`-bit
/// signed integers with `frac_bits` fractional bits.
///
/// The quantized value of `x` is `round(x * 2^frac_bits)` saturated to the
/// representable range, the usual choice for channel-LLR quantization in
/// turbo/LDPC decoder ASICs.
///
/// # Example
///
/// ```
/// use fec_fixed::Quantizer;
///
/// let q = Quantizer::new(5, 1);   // 5-bit, one fractional bit => range [-8, 7.5]
/// assert_eq!(q.quantize(1.0).value(), 2);
/// assert_eq!(q.quantize(100.0).value(), 15);   // saturates
/// assert_eq!(q.dequantize(q.quantize(-3.0)), -3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u32,
    frac_bits: u32,
}

impl Quantizer {
    /// Creates a quantizer with `bits` total bits and `frac_bits` fractional
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=31` or `frac_bits >= bits`.
    pub fn new(bits: u32, frac_bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "bit width must be in 1..=31");
        assert!(
            frac_bits < bits,
            "fractional bits must be less than total bits"
        );
        Quantizer { bits, frac_bits }
    }

    /// Total bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Scaling factor `2^frac_bits`.
    pub fn scale(&self) -> f64 {
        (1u64 << self.frac_bits) as f64
    }

    /// Largest representable real value.
    pub fn max_real(&self) -> f64 {
        SatFixed::max_value(self.bits) as f64 / self.scale()
    }

    /// Smallest representable real value.
    pub fn min_real(&self) -> f64 {
        SatFixed::min_value(self.bits) as f64 / self.scale()
    }

    /// Quantizes a single value.
    pub fn quantize(&self, x: f64) -> SatFixed {
        let v = (x * self.scale()).round();
        let v = if v.is_nan() { 0.0 } else { v };
        let clamped = v.clamp(i32::MIN as f64, i32::MAX as f64) as i32;
        SatFixed::new(clamped, self.bits)
    }

    /// Quantizes a single value while updating saturation statistics.
    pub fn quantize_tracked(&self, x: f64, stats: &mut QuantStats) -> SatFixed {
        let q = self.quantize(x);
        stats.total += 1;
        if q.value() == SatFixed::max_value(self.bits)
            || q.value() == SatFixed::min_value(self.bits)
        {
            stats.saturated += 1;
        }
        q
    }

    /// Converts a quantized value back to a real number.
    pub fn dequantize(&self, q: SatFixed) -> f64 {
        q.value() as f64 / self.scale()
    }

    /// Quantizes a slice of values, returning the integer representations.
    pub fn quantize_slice(&self, xs: &[f64]) -> Vec<SatFixed> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }
}

impl Default for Quantizer {
    /// The paper's 7-bit channel-LLR quantizer with one fractional bit.
    fn default() -> Self {
        Quantizer::new(crate::LAMBDA_BITS, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_on_representable_values() {
        let q = Quantizer::new(7, 2);
        for i in -256..=255 {
            let x = i as f64 / 4.0;
            if x <= q.max_real() && x >= q.min_real() {
                assert_eq!(q.dequantize(q.quantize(x)), x);
            }
        }
    }

    #[test]
    fn saturation_at_rails() {
        let q = Quantizer::new(5, 0);
        assert_eq!(q.quantize(1000.0).value(), 15);
        assert_eq!(q.quantize(-1000.0).value(), -16);
    }

    #[test]
    fn nan_maps_to_zero() {
        let q = Quantizer::new(7, 1);
        assert_eq!(q.quantize(f64::NAN).value(), 0);
    }

    #[test]
    fn stats_track_saturation() {
        let q = Quantizer::new(5, 0);
        let mut stats = QuantStats::default();
        q.quantize_tracked(0.0, &mut stats);
        q.quantize_tracked(500.0, &mut stats);
        q.quantize_tracked(-500.0, &mut stats);
        assert_eq!(stats.total, 3);
        assert_eq!(stats.saturated, 2);
        assert!((stats.saturation_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_ratio_is_zero() {
        assert_eq!(QuantStats::default().saturation_ratio(), 0.0);
    }

    #[test]
    fn default_is_paper_lambda_quantizer() {
        let q = Quantizer::default();
        assert_eq!(q.bits(), 7);
        assert_eq!(q.frac_bits(), 1);
    }

    #[test]
    #[should_panic(expected = "fractional bits")]
    fn too_many_frac_bits_panics() {
        let _ = Quantizer::new(4, 4);
    }

    #[test]
    fn quantize_slice_matches_scalar() {
        let q = Quantizer::new(7, 1);
        let xs = [0.3, -2.7, 10.0];
        let v = q.quantize_slice(&xs);
        for (x, s) in xs.iter().zip(&v) {
            assert_eq!(q.quantize(*x).value(), s.value());
        }
    }

    proptest! {
        #[test]
        fn quantization_error_bounded(x in -30.0f64..30.0, frac in 0u32..4) {
            let q = Quantizer::new(7, frac);
            let dq = q.dequantize(q.quantize(x));
            if x <= q.max_real() && x >= q.min_real() {
                prop_assert!((dq - x).abs() <= 0.5 / q.scale() + 1e-12);
            } else {
                // saturated: result is one of the rails
                prop_assert!(dq == q.max_real() || dq == q.min_real());
            }
        }

        #[test]
        fn quantizer_is_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0, frac in 0u32..4) {
            let q = Quantizer::new(7, frac);
            if a <= b {
                prop_assert!(q.quantize(a).value() <= q.quantize(b).value());
            }
        }
    }
}
