//! Floating-point log-likelihood ratio newtype used by the reference decoders.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A log-likelihood ratio `ln(P(bit = 0) / P(bit = 1))`.
///
/// The algorithmic reference decoders (floating-point belief propagation and
/// BCJR) operate on `Llr` values; the architectural models quantize them with
/// [`crate::Quantizer`] before feeding the fixed-point datapath models.
///
/// Positive values favour the bit value `0`, negative values favour `1`,
/// matching the convention used throughout the WiMAX decoder literature.
///
/// # Example
///
/// ```
/// use fec_fixed::Llr;
///
/// let l = Llr::new(2.5);
/// assert_eq!(l.hard_bit(), 0);
/// assert_eq!((-l).hard_bit(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Llr(pub f64);

impl Llr {
    /// Magnitude of the [`certain_zero`](Llr::certain_zero) /
    /// [`certain_one`](Llr::certain_one) constants.
    ///
    /// Deliberately a *large finite, addition-safe* value rather than
    /// `f64::MAX / 4.0`: the old constant overflowed to `±inf` after a
    /// handful of additions, and `inf - inf` in the `max*` recursion then
    /// produced `NaN`.  At `1e12` it still dominates any realistic channel
    /// LLR while billions of accumulations stay comfortably finite.
    pub const CERTAIN_MAGNITUDE: f64 = 1.0e12;

    /// Creates a new LLR from a raw floating-point value.
    pub fn new(value: f64) -> Self {
        Llr(value)
    }

    /// The LLR corresponding to a perfectly known `0` bit (large positive).
    pub fn certain_zero() -> Self {
        Llr(Self::CERTAIN_MAGNITUDE)
    }

    /// The LLR corresponding to a perfectly known `1` bit (large negative).
    pub fn certain_one() -> Self {
        Llr(-Self::CERTAIN_MAGNITUDE)
    }

    /// Returns the inner floating-point value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Hard decision: `1` if the LLR is strictly negative, `0` otherwise.
    ///
    /// This is **the** hard-decision convention of the workspace: every
    /// decoder routes its final decisions through this method.  `NaN` decodes
    /// as `0`, consistent with [`Llr::signum`] (which maps `NaN` to `+1.0`)
    /// and with [`crate::Quantizer`] (which quantizes `NaN` to `0`).
    pub fn hard_bit(self) -> u8 {
        u8::from(self.0 < 0.0)
    }

    /// Magnitude (reliability) of the LLR.
    pub fn abs(self) -> f64 {
        self.0.abs()
    }

    /// Sign of the LLR as `+1.0` or `-1.0` (zero maps to `+1.0`).
    pub fn signum(self) -> f64 {
        if self.0 < 0.0 {
            -1.0
        } else {
            1.0
        }
    }

    /// Clamps the LLR magnitude, mirroring datapath saturation.
    pub fn clamp(self, max_abs: f64) -> Self {
        Llr(self.0.clamp(-max_abs, max_abs))
    }

    /// Returns `true` if the value is finite (neither NaN nor infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Llr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Llr {
    fn from(v: f64) -> Self {
        Llr(v)
    }
}

impl From<Llr> for f64 {
    fn from(l: Llr) -> Self {
        l.0
    }
}

impl Add for Llr {
    type Output = Llr;
    fn add(self, rhs: Llr) -> Llr {
        Llr(self.0 + rhs.0)
    }
}

impl AddAssign for Llr {
    fn add_assign(&mut self, rhs: Llr) {
        self.0 += rhs.0;
    }
}

impl Sub for Llr {
    type Output = Llr;
    fn sub(self, rhs: Llr) -> Llr {
        Llr(self.0 - rhs.0)
    }
}

impl SubAssign for Llr {
    fn sub_assign(&mut self, rhs: Llr) {
        self.0 -= rhs.0;
    }
}

impl Neg for Llr {
    type Output = Llr;
    fn neg(self) -> Llr {
        Llr(-self.0)
    }
}

impl Mul<f64> for Llr {
    type Output = Llr;
    fn mul(self, rhs: f64) -> Llr {
        Llr(self.0 * rhs)
    }
}

impl Div<f64> for Llr {
    type Output = Llr;
    fn div(self, rhs: f64) -> Llr {
        Llr(self.0 / rhs)
    }
}

impl Sum for Llr {
    fn sum<I: Iterator<Item = Llr>>(iter: I) -> Llr {
        Llr(iter.map(|l| l.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_decision_convention() {
        assert_eq!(Llr::new(0.5).hard_bit(), 0);
        assert_eq!(Llr::new(0.0).hard_bit(), 0);
        assert_eq!(Llr::new(-0.5).hard_bit(), 1);
        assert_eq!(Llr::certain_zero().hard_bit(), 0);
        assert_eq!(Llr::certain_one().hard_bit(), 1);
    }

    #[test]
    fn nan_decodes_as_zero_like_the_quantizer() {
        // One convention for NaN everywhere: hard bit 0, sign +1, quantizer 0.
        assert_eq!(Llr::new(f64::NAN).hard_bit(), 0);
        assert_eq!(Llr::new(f64::NAN).signum(), 1.0);
    }

    #[test]
    fn certain_llrs_survive_repeated_addition() {
        // Regression: `f64::MAX / 4.0` overflowed to +inf after four
        // additions, and `inf - inf` produced NaN further down the chain.
        let mut acc = Llr::new(0.0);
        for _ in 0..1_000 {
            acc += Llr::certain_zero();
        }
        assert!(acc.is_finite(), "accumulated certain LLR must stay finite");
        let diff = acc + Llr::certain_one() - Llr::certain_zero();
        assert!(diff.is_finite());
        assert_eq!(diff.hard_bit(), 0);
    }

    #[test]
    fn certain_llrs_are_maxstar_safe() {
        use crate::max_star_exact;
        let v = max_star_exact(Llr::certain_zero().value(), Llr::certain_one().value());
        assert!(v.is_finite());
        assert!((v - Llr::certain_zero().value()).abs() < 1e-6);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Llr::new(1.5);
        let b = Llr::new(-0.5);
        assert_eq!((a + b).value(), 1.0);
        assert_eq!((a - b).value(), 2.0);
        assert_eq!((-a).value(), -1.5);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 1.0);
        c -= b;
        assert_eq!(c.value(), 1.5);
    }

    #[test]
    fn clamp_limits_magnitude() {
        assert_eq!(Llr::new(100.0).clamp(31.0).value(), 31.0);
        assert_eq!(Llr::new(-100.0).clamp(31.0).value(), -31.0);
        assert_eq!(Llr::new(3.0).clamp(31.0).value(), 3.0);
    }

    #[test]
    fn sum_of_llrs() {
        let total: Llr = vec![Llr::new(1.0), Llr::new(2.0), Llr::new(-0.5)]
            .into_iter()
            .sum();
        assert!((total.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn signum_convention() {
        assert_eq!(Llr::new(3.0).signum(), 1.0);
        assert_eq!(Llr::new(0.0).signum(), 1.0);
        assert_eq!(Llr::new(-3.0).signum(), -1.0);
    }
}
