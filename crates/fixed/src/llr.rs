//! Floating-point log-likelihood ratio newtype used by the reference decoders.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A log-likelihood ratio `ln(P(bit = 0) / P(bit = 1))`.
///
/// The algorithmic reference decoders (floating-point belief propagation and
/// BCJR) operate on `Llr` values; the architectural models quantize them with
/// [`crate::Quantizer`] before feeding the fixed-point datapath models.
///
/// Positive values favour the bit value `0`, negative values favour `1`,
/// matching the convention used throughout the WiMAX decoder literature.
///
/// # Example
///
/// ```
/// use fec_fixed::Llr;
///
/// let l = Llr::new(2.5);
/// assert_eq!(l.hard_bit(), 0);
/// assert_eq!((-l).hard_bit(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Llr(pub f64);

impl Llr {
    /// Creates a new LLR from a raw floating-point value.
    pub fn new(value: f64) -> Self {
        Llr(value)
    }

    /// The LLR corresponding to a perfectly known `0` bit (large positive).
    pub fn certain_zero() -> Self {
        Llr(f64::MAX / 4.0)
    }

    /// The LLR corresponding to a perfectly known `1` bit (large negative).
    pub fn certain_one() -> Self {
        Llr(-f64::MAX / 4.0)
    }

    /// Returns the inner floating-point value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Hard decision: `0` if the LLR is non-negative, `1` otherwise.
    pub fn hard_bit(self) -> u8 {
        if self.0 >= 0.0 {
            0
        } else {
            1
        }
    }

    /// Magnitude (reliability) of the LLR.
    pub fn abs(self) -> f64 {
        self.0.abs()
    }

    /// Sign of the LLR as `+1.0` or `-1.0` (zero maps to `+1.0`).
    pub fn signum(self) -> f64 {
        if self.0 < 0.0 {
            -1.0
        } else {
            1.0
        }
    }

    /// Clamps the LLR magnitude, mirroring datapath saturation.
    pub fn clamp(self, max_abs: f64) -> Self {
        Llr(self.0.clamp(-max_abs, max_abs))
    }

    /// Returns `true` if the value is finite (neither NaN nor infinite).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Llr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for Llr {
    fn from(v: f64) -> Self {
        Llr(v)
    }
}

impl From<Llr> for f64 {
    fn from(l: Llr) -> Self {
        l.0
    }
}

impl Add for Llr {
    type Output = Llr;
    fn add(self, rhs: Llr) -> Llr {
        Llr(self.0 + rhs.0)
    }
}

impl AddAssign for Llr {
    fn add_assign(&mut self, rhs: Llr) {
        self.0 += rhs.0;
    }
}

impl Sub for Llr {
    type Output = Llr;
    fn sub(self, rhs: Llr) -> Llr {
        Llr(self.0 - rhs.0)
    }
}

impl SubAssign for Llr {
    fn sub_assign(&mut self, rhs: Llr) {
        self.0 -= rhs.0;
    }
}

impl Neg for Llr {
    type Output = Llr;
    fn neg(self) -> Llr {
        Llr(-self.0)
    }
}

impl Mul<f64> for Llr {
    type Output = Llr;
    fn mul(self, rhs: f64) -> Llr {
        Llr(self.0 * rhs)
    }
}

impl Div<f64> for Llr {
    type Output = Llr;
    fn div(self, rhs: f64) -> Llr {
        Llr(self.0 / rhs)
    }
}

impl Sum for Llr {
    fn sum<I: Iterator<Item = Llr>>(iter: I) -> Llr {
        Llr(iter.map(|l| l.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_decision_convention() {
        assert_eq!(Llr::new(0.5).hard_bit(), 0);
        assert_eq!(Llr::new(0.0).hard_bit(), 0);
        assert_eq!(Llr::new(-0.5).hard_bit(), 1);
        assert_eq!(Llr::certain_zero().hard_bit(), 0);
        assert_eq!(Llr::certain_one().hard_bit(), 1);
    }

    #[test]
    fn arithmetic_behaves_like_f64() {
        let a = Llr::new(1.5);
        let b = Llr::new(-0.5);
        assert_eq!((a + b).value(), 1.0);
        assert_eq!((a - b).value(), 2.0);
        assert_eq!((-a).value(), -1.5);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 1.0);
        c -= b;
        assert_eq!(c.value(), 1.5);
    }

    #[test]
    fn clamp_limits_magnitude() {
        assert_eq!(Llr::new(100.0).clamp(31.0).value(), 31.0);
        assert_eq!(Llr::new(-100.0).clamp(31.0).value(), -31.0);
        assert_eq!(Llr::new(3.0).clamp(31.0).value(), 3.0);
    }

    #[test]
    fn sum_of_llrs() {
        let total: Llr = vec![Llr::new(1.0), Llr::new(2.0), Llr::new(-0.5)]
            .into_iter()
            .sum();
        assert!((total.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn signum_convention() {
        assert_eq!(Llr::new(3.0).signum(), 1.0);
        assert_eq!(Llr::new(0.0).signum(), 1.0);
        assert_eq!(Llr::new(-3.0).signum(), -1.0);
    }
}
