//! Saturating two's-complement fixed-point values of configurable width.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A saturating signed integer constrained to `bits` bits, mirroring the
/// behaviour of a hardware datapath register.
///
/// A `SatFixed` with `bits = 7` can represent values in `[-64, 63]`; additions
/// and subtractions saturate at the representable range instead of wrapping,
/// exactly as the adders in the LDPC core and SISO of the paper do.
///
/// # Example
///
/// ```
/// use fec_fixed::SatFixed;
///
/// let a = SatFixed::new(50, 7);
/// let b = SatFixed::new(40, 7);
/// assert_eq!((a + b).value(), 63);          // saturates at +63
/// assert_eq!((-a - b).value(), -64);        // saturates at -64
/// assert_eq!((a - b).value(), 10);
/// ```
#[derive(Debug, Clone, Copy, Eq)]
pub struct SatFixed {
    value: i32,
    bits: u32,
}

impl SatFixed {
    /// Creates a new value, clamping `value` to the representable range of
    /// `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 31.
    pub fn new(value: i32, bits: u32) -> Self {
        assert!((1..=31).contains(&bits), "bit width must be in 1..=31");
        let mut s = SatFixed { value: 0, bits };
        s.value = s.clamp_raw(value);
        s
    }

    /// The zero value at the given bit width.
    pub fn zero(bits: u32) -> Self {
        SatFixed::new(0, bits)
    }

    /// Largest representable value: `2^(bits-1) - 1`.
    pub fn max_value(bits: u32) -> i32 {
        (1i32 << (bits - 1)) - 1
    }

    /// Smallest representable value: `-2^(bits-1)`.
    pub fn min_value(bits: u32) -> i32 {
        -(1i32 << (bits - 1))
    }

    fn clamp_raw(&self, v: i32) -> i32 {
        v.clamp(Self::min_value(self.bits), Self::max_value(self.bits))
    }

    /// Returns the stored integer value.
    pub fn value(self) -> i32 {
        self.value
    }

    /// Returns the bit width.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Re-saturates this value to a (possibly narrower) bit width.
    pub fn resize(self, bits: u32) -> Self {
        SatFixed::new(self.value, bits)
    }

    /// Saturating addition of a raw integer.
    pub fn saturating_add_raw(self, rhs: i32) -> Self {
        SatFixed::new(self.value.saturating_add(rhs), self.bits)
    }

    /// Absolute value (saturating: `|-2^(b-1)|` clamps to `2^(b-1)-1`).
    pub fn abs(self) -> Self {
        SatFixed::new(self.value.saturating_abs(), self.bits)
    }
}

impl fmt::Display for SatFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q{}", self.value, self.bits)
    }
}

impl PartialEq for SatFixed {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

// `Hash` must agree with the manual `PartialEq`, which compares only the
// stored value (the bit width is metadata).
impl std::hash::Hash for SatFixed {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.value.hash(state);
    }
}

impl PartialOrd for SatFixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SatFixed {
    fn cmp(&self, other: &Self) -> Ordering {
        self.value.cmp(&other.value)
    }
}

impl Add for SatFixed {
    type Output = SatFixed;
    fn add(self, rhs: SatFixed) -> SatFixed {
        let bits = self.bits.max(rhs.bits);
        SatFixed::new(self.value.saturating_add(rhs.value), bits)
    }
}

impl Sub for SatFixed {
    type Output = SatFixed;
    fn sub(self, rhs: SatFixed) -> SatFixed {
        let bits = self.bits.max(rhs.bits);
        SatFixed::new(self.value.saturating_sub(rhs.value), bits)
    }
}

impl Neg for SatFixed {
    type Output = SatFixed;
    fn neg(self) -> SatFixed {
        SatFixed::new(self.value.saturating_neg(), self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn range_of_seven_bits() {
        assert_eq!(SatFixed::max_value(7), 63);
        assert_eq!(SatFixed::min_value(7), -64);
        assert_eq!(SatFixed::new(100, 7).value(), 63);
        assert_eq!(SatFixed::new(-100, 7).value(), -64);
    }

    #[test]
    fn range_of_five_bits() {
        assert_eq!(SatFixed::max_value(5), 15);
        assert_eq!(SatFixed::min_value(5), -16);
    }

    #[test]
    fn addition_saturates() {
        let a = SatFixed::new(60, 7);
        let b = SatFixed::new(10, 7);
        assert_eq!((a + b).value(), 63);
        assert_eq!((-a - b).value(), -64);
    }

    #[test]
    fn mixed_width_uses_wider() {
        let a = SatFixed::new(15, 5);
        let b = SatFixed::new(30, 7);
        let c = a + b;
        assert_eq!(c.bits(), 7);
        assert_eq!(c.value(), 45);
    }

    #[test]
    fn resize_saturates_to_narrower_width() {
        let a = SatFixed::new(45, 7);
        assert_eq!(a.resize(5).value(), 15);
        assert_eq!(a.resize(5).bits(), 5);
    }

    #[test]
    fn abs_saturates_at_minimum() {
        let m = SatFixed::new(SatFixed::min_value(7), 7);
        assert_eq!(m.abs().value(), 63);
        assert_eq!(SatFixed::new(-5, 7).abs().value(), 5);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn zero_width_panics() {
        let _ = SatFixed::new(0, 0);
    }

    #[test]
    fn display_contains_width() {
        assert_eq!(SatFixed::new(-3, 5).to_string(), "-3q5");
    }

    #[test]
    fn ordering_by_value() {
        assert!(SatFixed::new(3, 7) > SatFixed::new(2, 7));
        assert_eq!(SatFixed::new(3, 7), SatFixed::new(3, 5));
    }

    proptest! {
        #[test]
        fn always_within_range(v in i32::MIN/2..i32::MAX/2, bits in 1u32..=31) {
            let s = SatFixed::new(v, bits);
            prop_assert!(s.value() >= SatFixed::min_value(bits));
            prop_assert!(s.value() <= SatFixed::max_value(bits));
        }

        #[test]
        fn add_commutative(a in -1000i32..1000, b in -1000i32..1000) {
            let x = SatFixed::new(a, 7) + SatFixed::new(b, 7);
            let y = SatFixed::new(b, 7) + SatFixed::new(a, 7);
            prop_assert_eq!(x.value(), y.value());
        }

        #[test]
        fn neg_is_involution_within_range(a in -63i32..=63) {
            let s = SatFixed::new(a, 7);
            prop_assert_eq!((-(-s)).value(), a);
        }
    }
}
