//! Fixed-point arithmetic primitives shared by the turbo and LDPC decoder models.
//!
//! The decoder architecture of Condo, Martina and Masera (DATE 2012) quantizes
//! channel and state metrics on 7 bits and the LDPC check-to-variable messages
//! (`R_lk`) on 5 bits (Section IV of the paper).  This crate provides:
//!
//! * [`SatFixed`] — a saturating two's-complement fixed-point value with a
//!   configurable bit width, mirroring what a datapath register would hold.
//! * [`Quantizer`] — converts floating-point log-likelihood ratios (LLRs) into
//!   quantized integers and back, with saturation statistics.
//! * [`minsum`] — saturating integer message arithmetic for the
//!   normalized-min-sum check-node update (Eq. (11)), the substrate of the
//!   fixed-point layered decoder.
//! * [`maxstar`] — the `max*` operator family used by the BCJR recursion:
//!   exact (Log-MAP), look-up-table corrected, and plain `max` (Max-Log-MAP).
//! * [`Llr`] — a thin newtype over `f64` used throughout the algorithmic
//!   (floating-point) reference decoders.
//!
//! # The two datapaths
//!
//! The workspace carries **two parallel decode datapaths** built on this
//! crate:
//!
//! 1. the **floating-point reference** — decoders operating on [`Llr`]
//!    (`f64`), used to validate algorithms against textbook behaviour; and
//! 2. the **fixed hardware model** — decoders operating on quantized
//!    integers, mirroring what the paper's silicon computes: channel LLRs
//!    pass through the λ [`Quantizer`] ([`LAMBDA_BITS`]-bit with one
//!    fractional bit, NaN mapping to 0), every message add/subtract saturates
//!    at the register width ([`SatFixed`] semantics, [`minsum::MinSumArith`])
//!    and the `3/4` min-sum normalization is a shift-add.
//!
//! Comparing the two (see the `wimax_ldpc_quantization` example) yields the
//! quantization-loss curves the hardware evaluation relies on.
//!
//! # Example
//!
//! ```
//! use fec_fixed::{Quantizer, SatFixed};
//!
//! // 7-bit quantizer with 1 fractional bit, as used for channel LLRs.
//! let q = Quantizer::new(7, 1);
//! let x = q.quantize(3.2);
//! assert!(q.dequantize(x) > 2.9 && q.dequantize(x) < 3.6);
//!
//! let a = SatFixed::new(60, 7);
//! let b = SatFixed::new(30, 7);
//! // 60 + 30 saturates at the 7-bit maximum of 63.
//! assert_eq!((a + b).value(), 63);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod llr;
pub mod maxstar;
pub mod minsum;
pub mod quantizer;
pub mod sat;

pub use llr::Llr;
pub use maxstar::{max_log, max_star_exact, max_star_lut, MaxStar, MaxStarMode};
pub use minsum::MinSumArith;
pub use quantizer::{QuantStats, Quantizer};
pub use sat::SatFixed;

/// Number of bits used for channel LLRs, state metrics (`alpha`, `beta`) and
/// extrinsic values in the paper's processing element (Section IV).
pub const LAMBDA_BITS: u32 = 7;

/// Number of bits used for the LDPC check-to-variable messages `R_lk` and for
/// the turbo branch metric inputs `lambda[c(e)]` (Section IV).
pub const R_BITS: u32 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(LAMBDA_BITS, 7);
        assert_eq!(R_BITS, 5);
    }
}
