//! The Soft-In-Soft-Out (SISO) unit: BCJR forward/backward recursion over the
//! duo-binary trellis (Eq. (1)–(5) of the paper).

use crate::bitlevel::SymbolLlr;
use crate::trellis::{DuoBinaryTrellis, NUM_STATES};
use fec_fixed::{MaxStar, MaxStarMode};

/// Configuration of a SISO unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SisoConfig {
    /// Which `max*` flavour to use (the paper uses Max-Log-MAP for the
    /// double-binary code).
    pub max_star: MaxStarMode,
    /// Extrinsic scaling factor `sigma <= 1` (paper Sec. II.A, ref. [18]).
    pub scale: f64,
    /// Whether to run a wrap-around training pass so that the circular
    /// trellis boundary metrics are learnt instead of assumed uniform.
    pub wraparound: bool,
}

impl Default for SisoConfig {
    fn default() -> Self {
        SisoConfig {
            max_star: MaxStarMode::MaxLog,
            scale: 0.75,
            wraparound: true,
        }
    }
}

/// Soft inputs of one SISO half-iteration, all indexed by couple position in
/// *this* constituent decoder's order.
#[derive(Debug, Clone, PartialEq)]
pub struct SisoInput {
    /// Channel LLR of bit `A` of each couple.
    pub sys_a: Vec<f64>,
    /// Channel LLR of bit `B` of each couple.
    pub sys_b: Vec<f64>,
    /// Channel LLR of parity `Y` of each couple (0 where punctured).
    pub par_y: Vec<f64>,
    /// Channel LLR of parity `W` of each couple (0 where punctured).
    pub par_w: Vec<f64>,
    /// A-priori symbol LLRs (extrinsic from the other SISO).
    pub apriori: Vec<SymbolLlr>,
}

impl SisoInput {
    /// Creates an input with neutral a-priori information.
    pub fn new(sys_a: Vec<f64>, sys_b: Vec<f64>, par_y: Vec<f64>, par_w: Vec<f64>) -> Self {
        let n = sys_a.len();
        SisoInput {
            sys_a,
            sys_b,
            par_y,
            par_w,
            apriori: vec![[0.0; 3]; n],
        }
    }

    /// Number of couples.
    pub fn len(&self) -> usize {
        self.sys_a.len()
    }

    /// True when the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.sys_a.is_empty()
    }
}

/// Soft outputs of one SISO half-iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct SisoOutput {
    /// Extrinsic symbol LLRs (already scaled by `sigma`).
    pub extrinsic: Vec<SymbolLlr>,
    /// Full a-posteriori symbol LLRs (`ln P(u | everything)/P(0 | ...)`).
    pub aposteriori: Vec<SymbolLlr>,
}

impl SisoOutput {
    /// Hard decision for couple `j`: the symbol with the largest
    /// a-posteriori metric.
    pub fn hard_symbol(&self, j: usize) -> u8 {
        let m = [
            0.0,
            self.aposteriori[j][0],
            self.aposteriori[j][1],
            self.aposteriori[j][2],
        ];
        (0..4)
            .max_by(|&a, &b| m[a].partial_cmp(&m[b]).expect("metrics are finite"))
            .expect("non-empty") as u8
    }
}

/// A SISO unit bound to the duo-binary trellis.
///
/// # Example
///
/// ```
/// use wimax_turbo::{SisoConfig, SisoUnit};
/// use wimax_turbo::siso::SisoInput;
///
/// let siso = SisoUnit::new(SisoConfig::default());
/// // 8 noiseless all-zero couples
/// let n = 8;
/// let input = SisoInput::new(vec![4.0; n], vec![4.0; n], vec![4.0; n], vec![4.0; n]);
/// let out = siso.run(&input);
/// assert!((0..n).all(|j| out.hard_symbol(j) == 0));
/// ```
#[derive(Debug, Clone)]
pub struct SisoUnit {
    trellis: DuoBinaryTrellis,
    config: SisoConfig,
    max_star: MaxStar,
}

impl SisoUnit {
    /// Creates a SISO with the given configuration.
    pub fn new(config: SisoConfig) -> Self {
        SisoUnit {
            trellis: DuoBinaryTrellis::new(),
            config,
            max_star: MaxStar::new(config.max_star),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SisoConfig {
        &self.config
    }

    fn branch_metrics(&self, input: &SisoInput, j: usize) -> [f64; 32] {
        let mut gamma = [0.0f64; 32];
        let la = input.sys_a[j];
        let lb = input.sys_b[j];
        let ly = input.par_y[j];
        let lw = input.par_w[j];
        let apr = &input.apriori[j];
        for (idx, br) in self.trellis.branches().iter().enumerate() {
            let a = (br.symbol >> 1) & 1;
            let b = br.symbol & 1;
            let apr_m = if br.symbol == 0 {
                0.0
            } else {
                apr[br.symbol as usize - 1]
            };
            let sys = 0.5 * ((1.0 - 2.0 * a as f64) * la + (1.0 - 2.0 * b as f64) * lb);
            let par = 0.5
                * ((1.0 - 2.0 * br.parity_y as f64) * ly + (1.0 - 2.0 * br.parity_w as f64) * lw);
            gamma[idx] = apr_m + sys + par;
        }
        gamma
    }

    /// Runs one half-iteration over the whole frame.
    ///
    /// # Panics
    ///
    /// Panics if the input vectors do not all have the same length.
    pub fn run(&self, input: &SisoInput) -> SisoOutput {
        let n = input.len();
        assert!(
            input.sys_b.len() == n
                && input.par_y.len() == n
                && input.par_w.len() == n
                && input.apriori.len() == n,
            "SISO input vectors must have equal length"
        );
        let ms = &self.max_star;

        // Pre-compute branch metrics.
        let gammas: Vec<[f64; 32]> = (0..n).map(|j| self.branch_metrics(input, j)).collect();

        let uniform = [0.0f64; NUM_STATES];

        // Forward recursion, optionally warmed up by a wrap-around pass.
        let forward = |init: &[f64; NUM_STATES]| -> Vec<[f64; NUM_STATES]> {
            let mut alpha = vec![[f64::NEG_INFINITY; NUM_STATES]; n + 1];
            alpha[0] = *init;
            for j in 0..n {
                let mut next = [f64::NEG_INFINITY; NUM_STATES];
                for (idx, br) in self.trellis.branches().iter().enumerate() {
                    let v = alpha[j][br.from as usize] + gammas[j][idx];
                    next[br.to as usize] = ms.apply(next[br.to as usize], v);
                }
                normalize(&mut next);
                alpha[j + 1] = next;
            }
            alpha
        };

        let backward = |init: &[f64; NUM_STATES]| -> Vec<[f64; NUM_STATES]> {
            let mut beta = vec![[f64::NEG_INFINITY; NUM_STATES]; n + 1];
            beta[n] = *init;
            for j in (0..n).rev() {
                let mut prev = [f64::NEG_INFINITY; NUM_STATES];
                for (idx, br) in self.trellis.branches().iter().enumerate() {
                    let v = beta[j + 1][br.to as usize] + gammas[j][idx];
                    prev[br.from as usize] = ms.apply(prev[br.from as usize], v);
                }
                normalize(&mut prev);
                beta[j] = prev;
            }
            beta
        };

        let (alpha, beta) = if self.config.wraparound {
            let a_train = forward(&uniform);
            let b_train = backward(&uniform);
            (forward(&a_train[n]), backward(&b_train[0]))
        } else {
            (forward(&uniform), backward(&uniform))
        };

        // Extrinsic and a-posteriori computation.
        let mut extrinsic = Vec::with_capacity(n);
        let mut aposteriori = Vec::with_capacity(n);
        for j in 0..n {
            let mut apo = [f64::NEG_INFINITY; 4];
            for (idx, br) in self.trellis.branches().iter().enumerate() {
                let b_e = alpha[j][br.from as usize] + gammas[j][idx] + beta[j + 1][br.to as usize];
                let u = br.symbol as usize;
                apo[u] = ms.apply(apo[u], b_e);
            }
            let apo_rel = [apo[1] - apo[0], apo[2] - apo[0], apo[3] - apo[0]];
            let la = input.sys_a[j];
            let lb = input.sys_b[j];
            let apr = &input.apriori[j];
            let mut ext = [0.0; 3];
            for u in 1..4usize {
                let a = ((u >> 1) & 1) as f64;
                let b = (u & 1) as f64;
                // systematic contribution of symbol u relative to symbol 0
                let sys_rel = -a * la - b * lb;
                ext[u - 1] = self.config.scale * (apo_rel[u - 1] - apr[u - 1] - sys_rel);
            }
            extrinsic.push(ext);
            aposteriori.push(apo_rel);
        }

        SisoOutput {
            extrinsic,
            aposteriori,
        }
    }
}

fn normalize(metrics: &mut [f64; NUM_STATES]) {
    let max = metrics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max.is_finite() {
        for m in metrics.iter_mut() {
            *m -= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_constituent;
    use rand::{Rng, SeedableRng};

    fn siso() -> SisoUnit {
        SisoUnit::new(SisoConfig::default())
    }

    fn bpsk_llr(bit: u8, snr: f64) -> f64 {
        if bit == 0 {
            snr
        } else {
            -snr
        }
    }

    #[test]
    fn noiseless_all_zero_decodes_to_zero() {
        let n = 12;
        let input = SisoInput::new(vec![5.0; n], vec![5.0; n], vec![5.0; n], vec![5.0; n]);
        let out = siso().run(&input);
        for j in 0..n {
            assert_eq!(out.hard_symbol(j), 0);
            // extrinsic should also favour symbol 0 (all negative relative metrics)
            assert!(out.extrinsic[j].iter().all(|&e| e <= 1e-9));
        }
    }

    #[test]
    fn noiseless_random_frame_is_recovered() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 48;
        let couples: Vec<(u8, u8)> = (0..n)
            .map(|_| (rng.gen_range(0..=1), rng.gen_range(0..=1)))
            .collect();
        let enc = encode_constituent(&couples).unwrap();
        let snr = 6.0;
        let input = SisoInput::new(
            couples.iter().map(|&(a, _)| bpsk_llr(a, snr)).collect(),
            couples.iter().map(|&(_, b)| bpsk_llr(b, snr)).collect(),
            enc.parity_y.iter().map(|&y| bpsk_llr(y, snr)).collect(),
            enc.parity_w.iter().map(|&w| bpsk_llr(w, snr)).collect(),
        );
        let out = siso().run(&input);
        for (j, &(a, b)) in couples.iter().enumerate() {
            assert_eq!(out.hard_symbol(j), (a << 1) | b, "couple {j}");
        }
    }

    #[test]
    fn parity_alone_carries_information() {
        // With erased systematic bits the SISO must still prefer the
        // transmitted sequence thanks to the parity LLRs.
        let n = 24;
        let couples: Vec<(u8, u8)> = (0..n)
            .map(|j| (((j / 3) % 2) as u8, (j % 2) as u8))
            .collect();
        let enc = encode_constituent(&couples).unwrap();
        let snr = 8.0;
        let input = SisoInput::new(
            vec![0.0; n],
            vec![0.0; n],
            enc.parity_y.iter().map(|&y| bpsk_llr(y, snr)).collect(),
            enc.parity_w.iter().map(|&w| bpsk_llr(w, snr)).collect(),
        );
        let out = siso().run(&input);
        // the extrinsic must be non-trivial
        let energy: f64 = out
            .extrinsic
            .iter()
            .flat_map(|e| e.iter())
            .map(|v| v.abs())
            .sum();
        assert!(energy > 1.0, "extrinsic energy {energy}");
    }

    #[test]
    fn extrinsic_excludes_systematic_input() {
        // With only systematic information (no parity, no a-priori) the
        // extrinsic of a recursive code is weak compared to the a-posteriori.
        let n = 16;
        let input = SisoInput::new(vec![4.0; n], vec![4.0; n], vec![0.0; n], vec![0.0; n]);
        let out = siso().run(&input);
        let mid = n / 2;
        let apo_mag: f64 = out.aposteriori[mid].iter().map(|v| v.abs()).sum();
        let ext_mag: f64 = out.extrinsic[mid].iter().map(|v| v.abs()).sum();
        assert!(apo_mag > 3.0 * ext_mag, "apo {apo_mag} ext {ext_mag}");
    }

    #[test]
    fn max_log_and_log_map_agree_on_strong_llrs() {
        let n = 20;
        let mk = |mode| {
            let cfg = SisoConfig {
                max_star: mode,
                ..SisoConfig::default()
            };
            let unit = SisoUnit::new(cfg);
            let input = SisoInput::new(vec![9.0; n], vec![9.0; n], vec![9.0; n], vec![9.0; n]);
            unit.run(&input)
        };
        let a = mk(MaxStarMode::MaxLog);
        let b = mk(MaxStarMode::Exact);
        for j in 0..n {
            assert_eq!(a.hard_symbol(j), b.hard_symbol(j));
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_inputs_panic() {
        let input = SisoInput {
            sys_a: vec![0.0; 4],
            sys_b: vec![0.0; 3],
            par_y: vec![0.0; 4],
            par_w: vec![0.0; 4],
            apriori: vec![[0.0; 3]; 4],
        };
        let _ = siso().run(&input);
    }

    #[test]
    fn wraparound_improves_frame_edges() {
        // Compare the reliability of the first couple with and without the
        // wrap-around pass on a circularly-encoded frame.
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let n = 36;
        let couples: Vec<(u8, u8)> = (0..n)
            .map(|_| (rng.gen_range(0..=1), rng.gen_range(0..=1)))
            .collect();
        let enc = encode_constituent(&couples).unwrap();
        let snr = 1.2;
        let mk_input = || {
            SisoInput::new(
                couples.iter().map(|&(a, _)| bpsk_llr(a, snr)).collect(),
                couples.iter().map(|&(_, b)| bpsk_llr(b, snr)).collect(),
                enc.parity_y.iter().map(|&y| bpsk_llr(y, snr)).collect(),
                enc.parity_w.iter().map(|&w| bpsk_llr(w, snr)).collect(),
            )
        };
        let with = SisoUnit::new(SisoConfig {
            wraparound: true,
            ..SisoConfig::default()
        })
        .run(&mk_input());
        let without = SisoUnit::new(SisoConfig {
            wraparound: false,
            ..SisoConfig::default()
        })
        .run(&mk_input());
        let rel = |out: &SisoOutput| -> f64 {
            let m = &out.aposteriori[0];
            m.iter().map(|v| v.abs()).fold(0.0, f64::max)
        };
        // Both should decode the first couple identically here, but the
        // wrap-around metrics are at least as confident.
        assert!(rel(&with) + 1e-9 >= rel(&without) * 0.5);
    }
}
