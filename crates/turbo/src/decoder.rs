//! The iterative double-binary turbo decoder: two SISO units exchanging
//! extrinsic information through the ARP interleaver.

use crate::bitlevel::{bitlevel_roundtrip, SymbolLlr};
use crate::encoder::CtcCode;
use crate::siso::{SisoConfig, SisoInput, SisoUnit};
use crate::TurboError;
use fec_fixed::{Llr, MaxStar};

/// How extrinsic information travels between the two SISOs.
///
/// The paper (Sec. IV.B) uses bit-level exchange over the NoC to cut the
/// payload by one third at a ~0.2 dB BER cost; symbol-level exchange is the
/// lossless reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtrinsicExchange {
    /// Three symbol LLRs per couple (reference).
    SymbolLevel,
    /// Two bit LLRs per couple (paper's choice, refs [23][24]).
    #[default]
    BitLevel,
}

/// Configuration of the iterative decoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurboDecoderConfig {
    /// Number of full iterations (the paper uses 8 for DBTC).
    pub max_iterations: usize,
    /// SISO configuration shared by both constituent decoders.
    pub siso: SisoConfig,
    /// Extrinsic exchange mode.
    pub exchange: ExtrinsicExchange,
    /// Stop early when the hard decisions are stable across an iteration.
    pub early_termination: bool,
}

impl Default for TurboDecoderConfig {
    fn default() -> Self {
        TurboDecoderConfig {
            max_iterations: 8,
            siso: SisoConfig::default(),
            exchange: ExtrinsicExchange::default(),
            early_termination: true,
        }
    }
}

/// Result of a turbo decoding attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct TurboDecodeOutcome {
    /// Decoded information bits (length `2 * couples`).
    pub info_bits: Vec<u8>,
    /// Number of full iterations performed.
    pub iterations: usize,
    /// `true` if early termination fired (decisions became stable).
    pub converged: bool,
}

/// The iterative turbo decoder.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Clone)]
pub struct TurboDecoder {
    code: CtcCode,
    config: TurboDecoderConfig,
    siso: SisoUnit,
}

/// Channel LLRs split into the six sub-blocks of the CTC.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelLlrs {
    /// LLRs of the systematic `A` bits.
    pub sys_a: Vec<f64>,
    /// LLRs of the systematic `B` bits.
    pub sys_b: Vec<f64>,
    /// LLRs of parity `Y1` (0 where punctured).
    pub par_y1: Vec<f64>,
    /// LLRs of parity `W1` (0 where punctured).
    pub par_w1: Vec<f64>,
    /// LLRs of parity `Y2` (0 where punctured).
    pub par_y2: Vec<f64>,
    /// LLRs of parity `W2` (0 where punctured).
    pub par_w2: Vec<f64>,
}

impl TurboDecoder {
    /// Creates a decoder for `code`.
    pub fn new(code: &CtcCode, config: TurboDecoderConfig) -> Self {
        TurboDecoder {
            code: code.clone(),
            config,
            siso: SisoUnit::new(config.siso),
        }
    }

    /// The decoder configuration.
    pub fn config(&self) -> &TurboDecoderConfig {
        &self.config
    }

    /// The code being decoded.
    pub fn code(&self) -> &CtcCode {
        &self.code
    }

    /// Splits a flat channel-LLR vector (in the encoder's transmitted order)
    /// into the six sub-blocks, inserting zeros at punctured positions.
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::InvalidLength`] if `llrs.len()` does not match
    /// the punctured codeword length.
    pub fn demap_channel(&self, llrs: &[Llr]) -> Result<ChannelLlrs, TurboError> {
        let n = self.code.couples();
        let expected = self.code.coded_bits();
        if llrs.len() != expected {
            return Err(TurboError::InvalidLength {
                what: "channel LLRs",
                expected,
                actual: llrs.len(),
            });
        }
        let rate = self.code.rate();
        let mut it = llrs.iter().map(|l| l.value());
        let sys_a: Vec<f64> = (0..n).map(|_| it.next().expect("length checked")).collect();
        let sys_b: Vec<f64> = (0..n).map(|_| it.next().expect("length checked")).collect();
        let mut take_kept = |keep: &dyn Fn(usize) -> bool| -> Vec<f64> {
            (0..n)
                .map(|j| {
                    if keep(j) {
                        it.next().expect("length checked")
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        let par_y1 = take_kept(&|j| rate.keeps_y1(j));
        let par_w1 = take_kept(&|j| rate.keeps_w1(j));
        let par_y2 = take_kept(&|j| rate.keeps_y2(j));
        let par_w2 = take_kept(&|j| rate.keeps_w2(j));
        Ok(ChannelLlrs {
            sys_a,
            sys_b,
            par_y1,
            par_w1,
            par_y2,
            par_w2,
        })
    }

    /// Decodes a frame of channel LLRs (one value per transmitted bit, in the
    /// encoder's output order).
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::InvalidLength`] if the LLR vector has the wrong
    /// length.
    pub fn decode(&self, llrs: &[Llr]) -> Result<TurboDecodeOutcome, TurboError> {
        let ch = self.demap_channel(llrs)?;
        Ok(self.decode_channel(&ch))
    }

    /// Decodes pre-split channel LLRs.
    pub fn decode_channel(&self, ch: &ChannelLlrs) -> TurboDecodeOutcome {
        let n = self.code.couples();
        let pi = self.code.interleaver();
        let ms = MaxStar::new(self.config.siso.max_star);

        // Systematic LLRs as seen by SISO2 (interleaved order, couple swap applied).
        let mut sys_a2 = vec![0.0; n];
        let mut sys_b2 = vec![0.0; n];
        for j in 0..n {
            let p = pi.permute(j);
            if pi.swaps_couple(j) {
                sys_a2[p] = ch.sys_b[j];
                sys_b2[p] = ch.sys_a[j];
            } else {
                sys_a2[p] = ch.sys_a[j];
                sys_b2[p] = ch.sys_b[j];
            }
        }

        let mut apriori1: Vec<SymbolLlr> = vec![[0.0; 3]; n];
        let mut prev_decisions: Option<Vec<u8>> = None;
        let mut iterations = 0;
        let mut converged = false;
        let mut decisions = vec![0u8; n];

        for it in 0..self.config.max_iterations {
            iterations = it + 1;

            // ---- SISO 1: natural order ----
            let input1 = SisoInput {
                sys_a: ch.sys_a.clone(),
                sys_b: ch.sys_b.clone(),
                par_y: ch.par_y1.clone(),
                par_w: ch.par_w1.clone(),
                apriori: apriori1.clone(),
            };
            let out1 = self.siso.run(&input1);

            // extrinsic 1 -> a-priori 2 (interleave, swap-aware, optional bit-level compression)
            let mut apriori2: Vec<SymbolLlr> = vec![[0.0; 3]; n];
            for j in 0..n {
                let ext = self.exchange(&out1.extrinsic[j], &ms);
                let p = pi.permute(j);
                apriori2[p] = if pi.swaps_couple(j) {
                    swap_symbol(&ext)
                } else {
                    ext
                };
            }

            // ---- SISO 2: interleaved order ----
            let input2 = SisoInput {
                sys_a: sys_a2.clone(),
                sys_b: sys_b2.clone(),
                par_y: ch.par_y2.clone(),
                par_w: ch.par_w2.clone(),
                apriori: apriori2,
            };
            let out2 = self.siso.run(&input2);

            // extrinsic 2 -> a-priori 1 (de-interleave)
            for (j, apriori) in apriori1.iter_mut().enumerate() {
                let p = pi.permute(j);
                let ext = self.exchange(&out2.extrinsic[p], &ms);
                *apriori = if pi.swaps_couple(j) {
                    swap_symbol(&ext)
                } else {
                    ext
                };
            }

            // decisions from SISO2's a-posteriori, mapped back to natural order
            #[allow(clippy::needless_range_loop)] // `j` also feeds `pi.permute(j)`
            for j in 0..n {
                let p = pi.permute(j);
                let apo = if pi.swaps_couple(j) {
                    swap_symbol(&out2.aposteriori[p])
                } else {
                    out2.aposteriori[p]
                };
                let m = [0.0, apo[0], apo[1], apo[2]];
                decisions[j] = (0..4)
                    .max_by(|&a, &b| m[a].partial_cmp(&m[b]).expect("finite"))
                    .expect("non-empty") as u8;
            }

            if self.config.early_termination {
                if let Some(prev) = &prev_decisions {
                    if *prev == decisions {
                        converged = true;
                        break;
                    }
                }
                prev_decisions = Some(decisions.clone());
            }
        }

        let mut info_bits = Vec::with_capacity(2 * n);
        for &u in &decisions {
            info_bits.push((u >> 1) & 1);
            info_bits.push(u & 1);
        }
        TurboDecodeOutcome {
            info_bits,
            iterations,
            converged,
        }
    }

    fn exchange(&self, ext: &SymbolLlr, ms: &MaxStar) -> SymbolLlr {
        match self.config.exchange {
            ExtrinsicExchange::SymbolLevel => *ext,
            ExtrinsicExchange::BitLevel => bitlevel_roundtrip(ext, ms),
        }
    }
}

/// Remaps a symbol LLR vector under the `A <-> B` swap (symbols 1 and 2 trade
/// places, symbol 3 is invariant).
fn swap_symbol(s: &SymbolLlr) -> SymbolLlr {
    [s[1], s[0], s[2]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::TurboEncoder;
    use crate::PunctureRate;
    use rand::{Rng, SeedableRng};

    fn bpsk(bit: u8) -> f64 {
        if bit == 0 {
            1.0
        } else {
            -1.0
        }
    }

    fn noisy_llrs(cw: &[u8], sigma: f64, seed: u64) -> Vec<Llr> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        cw.iter()
            .map(|&b| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                Llr::new(2.0 * (bpsk(b) + sigma * noise) / (sigma * sigma))
            })
            .collect()
    }

    #[test]
    fn swap_symbol_is_involution() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(swap_symbol(&swap_symbol(&s)), s);
        assert_eq!(swap_symbol(&s), [2.0, 1.0, 3.0]);
    }

    #[test]
    fn noiseless_roundtrip_small_frame() {
        let code = CtcCode::wimax(24).unwrap();
        let enc = TurboEncoder::new(&code);
        let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let info: Vec<u8> = (0..code.info_bits())
            .map(|_| rng.gen_range(0..=1))
            .collect();
        let cw = enc.encode(&info).unwrap();
        let llrs: Vec<Llr> = cw
            .iter()
            .map(|&b| Llr::new(8.0 * (1.0 - 2.0 * b as f64)))
            .collect();
        let out = dec.decode(&llrs).unwrap();
        assert_eq!(out.info_bits, info);
    }

    #[test]
    fn decodes_noisy_frame_at_moderate_snr() {
        let code = CtcCode::wimax(48).unwrap();
        let enc = TurboEncoder::new(&code);
        let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let info: Vec<u8> = (0..code.info_bits())
            .map(|_| rng.gen_range(0..=1))
            .collect();
        let cw = enc.encode(&info).unwrap();
        // Eb/N0 = 3 dB at rate 1/2 -> sigma^2 = 1/(2*0.5*10^0.3) ~ 0.5
        let llrs = noisy_llrs(&cw, 0.5f64.sqrt(), 33);
        let out = dec.decode(&llrs).unwrap();
        assert_eq!(out.info_bits, info, "turbo decoding failed at 3 dB");
    }

    #[test]
    fn symbol_level_exchange_also_decodes() {
        let code = CtcCode::wimax(48).unwrap();
        let enc = TurboEncoder::new(&code);
        let cfg = TurboDecoderConfig {
            exchange: ExtrinsicExchange::SymbolLevel,
            ..TurboDecoderConfig::default()
        };
        let dec = TurboDecoder::new(&code, cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let info: Vec<u8> = (0..code.info_bits())
            .map(|_| rng.gen_range(0..=1))
            .collect();
        let cw = enc.encode(&info).unwrap();
        let llrs = noisy_llrs(&cw, 0.5f64.sqrt(), 44);
        let out = dec.decode(&llrs).unwrap();
        assert_eq!(out.info_bits, info);
    }

    #[test]
    fn rate_one_third_is_more_robust_than_rate_half() {
        // At a fixed (noisy) channel sigma, the rate-1/3 mother code should
        // decode at least as well as the punctured rate-1/2 code.
        let sigma = 0.9;
        let mut errors = [0usize; 2];
        for (slot, rate) in [(0, PunctureRate::R13), (1, PunctureRate::R12)] {
            let code = CtcCode::with_rate(48, rate).unwrap();
            let enc = TurboEncoder::new(&code);
            let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
            let mut rng = rand::rngs::StdRng::seed_from_u64(123);
            for seed in 0..6 {
                let info: Vec<u8> = (0..code.info_bits())
                    .map(|_| rng.gen_range(0..=1))
                    .collect();
                let cw = enc.encode(&info).unwrap();
                let llrs = noisy_llrs(&cw, sigma, 1000 + seed);
                let out = dec.decode(&llrs).unwrap();
                errors[slot] += out
                    .info_bits
                    .iter()
                    .zip(&info)
                    .filter(|(a, b)| a != b)
                    .count();
            }
        }
        assert!(
            errors[0] <= errors[1],
            "R13 errors {} > R12 errors {}",
            errors[0],
            errors[1]
        );
    }

    #[test]
    fn early_termination_reports_convergence() {
        let code = CtcCode::wimax(24).unwrap();
        let enc = TurboEncoder::new(&code);
        let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
        let info = vec![0u8; code.info_bits()];
        let cw = enc.encode(&info).unwrap();
        let llrs: Vec<Llr> = cw
            .iter()
            .map(|&b| Llr::new(9.0 * (1.0 - 2.0 * b as f64)))
            .collect();
        let out = dec.decode(&llrs).unwrap();
        assert!(out.converged);
        assert!(out.iterations < 8);
    }

    #[test]
    fn wrong_llr_length_is_rejected() {
        let code = CtcCode::wimax(24).unwrap();
        let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
        assert!(matches!(
            dec.decode(&[Llr::new(0.0); 10]),
            Err(TurboError::InvalidLength { .. })
        ));
    }

    #[test]
    fn demap_inserts_zeros_at_punctured_positions() {
        let code = CtcCode::with_rate(24, PunctureRate::R23).unwrap();
        let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
        let llrs = vec![Llr::new(1.0); code.coded_bits()];
        let ch = dec.demap_channel(&llrs).unwrap();
        // W1/W2 fully punctured at rate 2/3
        assert!(ch.par_w1.iter().all(|&v| v == 0.0));
        assert!(ch.par_w2.iter().all(|&v| v == 0.0));
        // Y1 present only on even couples
        assert!(ch.par_y1.iter().step_by(2).all(|&v| v == 1.0));
        assert!(ch.par_y1.iter().skip(1).step_by(2).all(|&v| v == 0.0));
    }

    #[test]
    fn larger_wimax_frame_decodes() {
        let code = CtcCode::wimax(240).unwrap();
        let enc = TurboEncoder::new(&code);
        let dec = TurboDecoder::new(&code, TurboDecoderConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        let info: Vec<u8> = (0..code.info_bits())
            .map(|_| rng.gen_range(0..=1))
            .collect();
        let cw = enc.encode(&info).unwrap();
        let llrs = noisy_llrs(&cw, 0.55f64.sqrt(), 77);
        let out = dec.decode(&llrs).unwrap();
        let errs = out
            .info_bits
            .iter()
            .zip(&info)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(errs, 0, "bit errors at 2.6 dB: {errs}");
    }
}
