//! Symbol-To-Bit (STB) and Bit-To-Symbol (BTS) conversion units.
//!
//! The paper (Section IV.B) sends *bit-level* extrinsic information over the
//! NoC for the double-binary turbo code: this reduces the network payload by
//! roughly one third (two bit LLRs instead of three symbol LLRs per couple)
//! at the cost of about 0.2 dB of BER performance (refs [23], [24]).  The
//! STB unit compresses a symbol-level extrinsic vector into two bit LLRs
//! before transmission; the BTS unit expands the received bit LLRs back into
//! a symbol-level a-priori vector.

use fec_fixed::MaxStar;

/// A symbol-level LLR vector for one couple: `lambda[u] = ln P(u)/P(0)` for
/// `u = 1, 2, 3` (the value for `u = 0` is zero by definition).
pub type SymbolLlr = [f64; 3];

/// Converts a symbol-level extrinsic vector into bit-level LLRs (STB unit).
///
/// Bit `A` is the most-significant bit of the couple (`u = 2A + B`).
/// The returned LLRs follow the convention `lambda = ln P(bit=0)/P(bit=1)`.
///
/// # Example
///
/// ```
/// use wimax_turbo::bitlevel::symbol_to_bits;
/// use fec_fixed::{MaxStar, MaxStarMode};
///
/// // strongly favour symbol 3 (A = 1, B = 1)
/// let ms = MaxStar::new(MaxStarMode::MaxLog);
/// let (la, lb) = symbol_to_bits(&[-5.0, -5.0, 10.0], &ms);
/// assert!(la < 0.0 && lb < 0.0);
/// ```
pub fn symbol_to_bits(symbol: &SymbolLlr, max_star: &MaxStar) -> (f64, f64) {
    // metrics for u = 0..3 with metric(0) = 0
    let m = [0.0, symbol[0], symbol[1], symbol[2]];
    // A = 0 for u in {0,1}; A = 1 for u in {2,3}
    let la = max_star.apply(m[0], m[1]) - max_star.apply(m[2], m[3]);
    // B = 0 for u in {0,2}; B = 1 for u in {1,3}
    let lb = max_star.apply(m[0], m[2]) - max_star.apply(m[1], m[3]);
    (la, lb)
}

/// Reconstructs a symbol-level a-priori vector from bit-level LLRs (BTS unit),
/// assuming the two bits are independent.
///
/// # Example
///
/// ```
/// use wimax_turbo::bitlevel::bits_to_symbol;
///
/// let s = bits_to_symbol(2.0, -1.0);
/// // u = 1 (A=0, B=1): favoured by the negative B LLR
/// assert!(s[0] > 0.0);
/// // u = 2 (A=1, B=0): penalised by the positive A LLR
/// assert!(s[1] < 0.0);
/// ```
pub fn bits_to_symbol(lambda_a: f64, lambda_b: f64) -> SymbolLlr {
    // ln P(u)/P(0) = -A(u) * lambda_a - B(u) * lambda_b
    [
        -lambda_b,            // u = 1: A=0, B=1
        -lambda_a,            // u = 2: A=1, B=0
        -lambda_a - lambda_b, // u = 3: A=1, B=1
    ]
}

/// Round-trips a symbol extrinsic through the bit-level exchange, modelling
/// what the receiving SISO actually sees when bit-level messages are used.
pub fn bitlevel_roundtrip(symbol: &SymbolLlr, max_star: &MaxStar) -> SymbolLlr {
    let (la, lb) = symbol_to_bits(symbol, max_star);
    bits_to_symbol(la, lb)
}

/// Number of NoC payload values per couple with symbol-level exchange.
pub const SYMBOL_LEVEL_VALUES_PER_COUPLE: usize = 3;

/// Number of NoC payload values per couple with bit-level exchange.
pub const BIT_LEVEL_VALUES_PER_COUPLE: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use fec_fixed::MaxStarMode;
    use proptest::prelude::*;

    fn exact() -> MaxStar {
        MaxStar::new(MaxStarMode::Exact)
    }

    #[test]
    fn neutral_symbol_gives_neutral_bits() {
        let (la, lb) = symbol_to_bits(&[0.0, 0.0, 0.0], &exact());
        assert!(la.abs() < 1e-12);
        assert!(lb.abs() < 1e-12);
    }

    #[test]
    fn certain_symbol_maps_to_consistent_bits() {
        // strongly favour u = 2 (A = 1, B = 0)
        let (la, lb) = symbol_to_bits(&[-20.0, 20.0, -20.0], &exact());
        assert!(la < -5.0, "A should favour 1 (negative LLR), got {la}");
        assert!(lb > 5.0, "B should favour 0 (positive LLR), got {lb}");
    }

    #[test]
    fn bts_reconstruction_is_product_form() {
        let s = bits_to_symbol(3.0, 1.0);
        assert_eq!(s, [-1.0, -3.0, -4.0]);
    }

    #[test]
    fn roundtrip_preserves_hard_decision() {
        let ms = exact();
        for (idx, sym) in [
            [5.0, -2.0, -3.0],  // favours u=1
            [-2.0, 6.0, -1.0],  // favours u=2
            [-1.0, -2.0, 7.0],  // favours u=3
            [-4.0, -5.0, -6.0], // favours u=0
        ]
        .iter()
        .enumerate()
        {
            let rt = bitlevel_roundtrip(sym, &ms);
            let best_before = best_symbol(sym);
            let best_after = best_symbol(&rt);
            assert_eq!(best_before, best_after, "case {idx}");
        }
    }

    fn best_symbol(s: &SymbolLlr) -> usize {
        let m = [0.0, s[0], s[1], s[2]];
        (0..4)
            .max_by(|&a, &b| m[a].partial_cmp(&m[b]).unwrap())
            .unwrap()
    }

    #[test]
    fn payload_reduction_is_one_third() {
        let reduction =
            1.0 - BIT_LEVEL_VALUES_PER_COUPLE as f64 / SYMBOL_LEVEL_VALUES_PER_COUPLE as f64;
        assert!((reduction - 1.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn roundtrip_is_lossless_for_product_form_inputs(la in -8.0f64..8.0, lb in -8.0f64..8.0) {
            // If the symbol distribution is already a product of independent
            // bit marginals, STB followed by BTS is exact (with the exact max*).
            let s = bits_to_symbol(la, lb);
            let rt = bitlevel_roundtrip(&s, &exact());
            for (x, y) in s.iter().zip(&rt) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn stb_output_is_bounded_by_symbol_range(s1 in -10.0f64..10.0, s2 in -10.0f64..10.0, s3 in -10.0f64..10.0) {
            let (la, lb) = symbol_to_bits(&[s1, s2, s3], &exact());
            let bound = 2.0 * s1.abs().max(s2.abs()).max(s3.abs()) + 2.0;
            prop_assert!(la.abs() <= bound);
            prop_assert!(lb.abs() <= bound);
        }
    }
}
