//! [`FecCodec`] adapter exposing the WiMAX double-binary turbo decoder to
//! the unified Monte-Carlo simulation engine (`fec_channel::sim`).

use crate::decoder::{ExtrinsicExchange, TurboDecoder, TurboDecoderConfig};
use crate::encoder::{CtcCode, TurboEncoder};
use fec_channel::sim::{DecodedFrame, FecCodec};
use fec_fixed::Llr;

/// The iterative duo-binary turbo decoder behind the [`FecCodec`]
/// interface; the extrinsic-exchange mode (symbol- or bit-level) comes from
/// the [`TurboDecoderConfig`].
#[derive(Debug, Clone)]
pub struct TurboCodec {
    code: CtcCode,
    encoder: TurboEncoder,
    decoder: TurboDecoder,
    exchange: ExtrinsicExchange,
}

impl TurboCodec {
    /// Builds the codec for `code` with the given decoder configuration.
    pub fn new(code: &CtcCode, config: TurboDecoderConfig) -> Self {
        TurboCodec {
            code: code.clone(),
            encoder: TurboEncoder::new(code),
            decoder: TurboDecoder::new(code, config),
            exchange: config.exchange,
        }
    }
}

impl FecCodec for TurboCodec {
    fn name(&self) -> String {
        let mode = match self.exchange {
            ExtrinsicExchange::SymbolLevel => "symbol",
            ExtrinsicExchange::BitLevel => "bit",
        };
        format!("wimax-ctc-{}c-{mode}", self.code.couples())
    }

    fn info_bits(&self) -> usize {
        self.code.info_bits()
    }

    fn codeword_bits(&self) -> usize {
        self.code.coded_bits()
    }

    fn encode(&self, info: &[u8]) -> Vec<u8> {
        self.encoder
            .encode(info)
            .expect("info length matches the code")
    }

    fn decode(&self, llrs: &[Llr]) -> DecodedFrame {
        let out = self
            .decoder
            .decode(llrs)
            .expect("LLR length matches the punctured codeword");
        DecodedFrame {
            info_bits: out.info_bits,
            iterations: out.iterations,
            converged: out.converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fec_channel::sim::{EngineConfig, SimulationEngine};

    fn codec(exchange: ExtrinsicExchange) -> TurboCodec {
        let code = CtcCode::wimax(24).expect("valid WiMAX frame size");
        TurboCodec::new(
            &code,
            TurboDecoderConfig {
                exchange,
                ..TurboDecoderConfig::default()
            },
        )
    }

    #[test]
    fn codec_reports_code_dimensions() {
        let c = codec(ExtrinsicExchange::BitLevel);
        assert_eq!(c.info_bits(), 48);
        assert_eq!(c.codeword_bits(), 2 * c.info_bits());
        assert!((c.rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.name(), "wimax-ctc-24c-bit");
        assert_eq!(
            codec(ExtrinsicExchange::SymbolLevel).name(),
            "wimax-ctc-24c-symbol"
        );
    }

    #[test]
    fn noiseless_roundtrip() {
        let c = codec(ExtrinsicExchange::SymbolLevel);
        let info: Vec<u8> = (0..c.info_bits()).map(|i| (i % 2) as u8).collect();
        let cw = c.encode(&info);
        let llrs: Vec<Llr> = cw
            .iter()
            .map(|&b| Llr::new(7.0 * (1.0 - 2.0 * f64::from(b))))
            .collect();
        let out = c.decode(&llrs);
        assert_eq!(out.info_bits, info);
    }

    #[test]
    fn engine_runs_the_turbo_codec_error_free_at_high_snr() {
        let c = codec(ExtrinsicExchange::BitLevel);
        let engine = SimulationEngine::new(EngineConfig::fixed_frames(5, 2));
        let point = engine.run_point(&c, 6.0);
        assert_eq!(point.frames, 5);
        assert_eq!(point.bit_errors, 0);
    }
}
