//! The 8-state duo-binary CRSC constituent encoder and its trellis.
//!
//! The constituent code of the WiMAX CTC is a circular recursive systematic
//! convolutional code with feedback polynomial `1 + D + D^3` and parity
//! polynomials `1 + D^2 + D^3` (Y) and `1 + D^3` (W).  The second input bit
//! `B` is additionally injected at the inputs of the first two registers.
//! The state-update equations implemented here are
//!
//! ```text
//! d   = A ^ B ^ s1 ^ s3           (register-1 input / feedback adder)
//! Y   = d ^ s2 ^ s3
//! W   = d ^ s3
//! s1' = d
//! s2' = s1 ^ B
//! s3' = s2
//! ```
//!
//! The encoder and the decoder trellis are both generated from this single
//! transition function, so they are consistent by construction.

/// Number of trellis states (3 memory bits).
pub const NUM_STATES: usize = 8;

/// Number of input symbols per trellis step (a couple of bits `A`, `B`).
pub const SYMBOLS: usize = 4;

/// Output of one encoder step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutput {
    /// Next encoder state (0..8).
    pub next_state: u8,
    /// First parity bit (polynomial `1 + D^2 + D^3`).
    pub parity_y: u8,
    /// Second parity bit (polynomial `1 + D^3`).
    pub parity_w: u8,
}

/// Advances the constituent encoder by one duo-binary symbol.
///
/// `symbol` encodes the couple as `2*A + B`.
///
/// # Panics
///
/// Panics if `state >= 8` or `symbol >= 4`.
pub fn step(state: u8, symbol: u8) -> StepOutput {
    assert!((state as usize) < NUM_STATES, "state out of range");
    assert!((symbol as usize) < SYMBOLS, "symbol out of range");
    let s1 = (state >> 2) & 1;
    let s2 = (state >> 1) & 1;
    let s3 = state & 1;
    let a = (symbol >> 1) & 1;
    let b = symbol & 1;

    let d = a ^ b ^ s1 ^ s3;
    let y = d ^ s2 ^ s3;
    let w = d ^ s3;
    let ns1 = d;
    let ns2 = s1 ^ b;
    let ns3 = s2;

    StepOutput {
        next_state: (ns1 << 2) | (ns2 << 1) | ns3,
        parity_y: y,
        parity_w: w,
    }
}

/// A single trellis branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branch {
    /// Starting state `s^S(e)`.
    pub from: u8,
    /// Ending state `s^E(e)`.
    pub to: u8,
    /// Uncoded symbol `u(e)` (couple `2A + B`).
    pub symbol: u8,
    /// Parity bit Y of the branch.
    pub parity_y: u8,
    /// Parity bit W of the branch.
    pub parity_w: u8,
}

/// Pre-computed duo-binary trellis.
///
/// # Example
///
/// ```
/// use wimax_turbo::DuoBinaryTrellis;
///
/// let t = DuoBinaryTrellis::new();
/// // 8 states x 4 symbols = 32 branches
/// assert_eq!(t.branches().len(), 32);
/// // every state has exactly 4 incoming branches
/// assert!( (0..8).all(|s| t.incoming(s).len() == 4) );
/// ```
#[derive(Debug, Clone)]
pub struct DuoBinaryTrellis {
    branches: Vec<Branch>,
    outgoing: Vec<Vec<usize>>,
    incoming: Vec<Vec<usize>>,
}

impl Default for DuoBinaryTrellis {
    fn default() -> Self {
        Self::new()
    }
}

impl DuoBinaryTrellis {
    /// Builds the trellis from the constituent-encoder transition function.
    pub fn new() -> Self {
        let mut branches = Vec::with_capacity(NUM_STATES * SYMBOLS);
        let mut outgoing: Vec<Vec<usize>> = (0..NUM_STATES)
            .map(|_| Vec::with_capacity(SYMBOLS))
            .collect();
        let mut incoming: Vec<Vec<usize>> = (0..NUM_STATES)
            .map(|_| Vec::with_capacity(SYMBOLS))
            .collect();
        for state in 0..NUM_STATES as u8 {
            for symbol in 0..SYMBOLS as u8 {
                let out = step(state, symbol);
                let idx = branches.len();
                branches.push(Branch {
                    from: state,
                    to: out.next_state,
                    symbol,
                    parity_y: out.parity_y,
                    parity_w: out.parity_w,
                });
                outgoing[state as usize].push(idx);
                incoming[out.next_state as usize].push(idx);
            }
        }
        DuoBinaryTrellis {
            branches,
            outgoing,
            incoming,
        }
    }

    /// All 32 branches.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Indices of the branches leaving `state`.
    pub fn outgoing(&self, state: u8) -> &[usize] {
        &self.outgoing[state as usize]
    }

    /// Indices of the branches entering `state`.
    pub fn incoming(&self, state: u8) -> &[usize] {
        &self.incoming[state as usize]
    }
}

/// 3x3 binary matrix used for the circulation-state computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Gf2Matrix3([[u8; 3]; 3]);

impl Gf2Matrix3 {
    fn identity() -> Self {
        Gf2Matrix3([[1, 0, 0], [0, 1, 0], [0, 0, 1]])
    }

    /// State-update matrix of the CRSC encoder: `s' = G s (+ input terms)`.
    fn state_update() -> Self {
        // s1' = s1 + s3 ; s2' = s1 ; s3' = s2
        Gf2Matrix3([[1, 0, 1], [1, 0, 0], [0, 1, 0]])
    }

    fn mul(&self, other: &Gf2Matrix3) -> Gf2Matrix3 {
        let mut out = [[0u8; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let mut acc = 0;
                for k in 0..3 {
                    acc ^= self.0[i][k] & other.0[k][j];
                }
                *cell = acc;
            }
        }
        Gf2Matrix3(out)
    }

    fn pow(&self, mut e: usize) -> Gf2Matrix3 {
        let mut base = *self;
        let mut acc = Gf2Matrix3::identity();
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(&base);
            }
            base = base.mul(&base);
            e >>= 1;
        }
        acc
    }

    fn add(&self, other: &Gf2Matrix3) -> Gf2Matrix3 {
        let mut out = [[0u8; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.0[i][j] ^ other.0[i][j];
            }
        }
        Gf2Matrix3(out)
    }

    /// Inverse over GF(2), or `None` if singular.
    fn inverse(&self) -> Option<Gf2Matrix3> {
        let mut a = self.0;
        let mut inv = Gf2Matrix3::identity().0;
        for col in 0..3 {
            let pivot = (col..3).find(|&r| a[r][col] == 1)?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            for r in 0..3 {
                if r != col && a[r][col] == 1 {
                    for c in 0..3 {
                        a[r][c] ^= a[col][c];
                        inv[r][c] ^= inv[col][c];
                    }
                }
            }
        }
        Some(Gf2Matrix3(inv))
    }

    fn apply(&self, v: u8) -> u8 {
        // v = (s1, s2, s3) packed as bits 2,1,0
        let s = [(v >> 2) & 1, (v >> 1) & 1, v & 1];
        let mut out = 0u8;
        for (i, row) in self.0.iter().enumerate() {
            let mut acc = 0;
            for (k, &cell) in row.iter().enumerate() {
                acc ^= cell & s[k];
            }
            out |= acc << (2 - i);
        }
        out
    }
}

/// Computes the circulation state of a CRSC encoding.
///
/// Given the final state `s_n` reached after encoding the frame from state 0,
/// the circulation state `s_c` satisfies `s_c = G^N s_c + s_n`, i.e.
/// `s_c = (I + G^N)^{-1} s_n`.  The inverse exists whenever `N mod 7 != 0`
/// (the period of the feedback polynomial), which the WiMAX frame sizes
/// guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CirculationState;

impl CirculationState {
    /// Computes the circulation state, or `None` if `n_couples` is a
    /// multiple of 7.
    pub fn compute(n_couples: usize, final_state_from_zero: u8) -> Option<u8> {
        let g = Gf2Matrix3::state_update();
        let gn = g.pow(n_couples);
        let m = gn.add(&Gf2Matrix3::identity());
        let inv = m.inverse()?;
        Some(inv.apply(final_state_from_zero))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn step_from_zero_with_zero_input_stays_zero() {
        let out = step(0, 0);
        assert_eq!(out.next_state, 0);
        assert_eq!(out.parity_y, 0);
        assert_eq!(out.parity_w, 0);
    }

    #[test]
    #[should_panic(expected = "state out of range")]
    fn invalid_state_panics() {
        let _ = step(8, 0);
    }

    #[test]
    #[should_panic(expected = "symbol out of range")]
    fn invalid_symbol_panics() {
        let _ = step(0, 4);
    }

    #[test]
    fn trellis_has_uniform_connectivity() {
        let t = DuoBinaryTrellis::new();
        assert_eq!(t.branches().len(), 32);
        for s in 0..NUM_STATES as u8 {
            assert_eq!(t.outgoing(s).len(), 4);
            assert_eq!(t.incoming(s).len(), 4);
            // the four outgoing branches carry the four distinct symbols
            let mut symbols: Vec<u8> = t
                .outgoing(s)
                .iter()
                .map(|&i| t.branches()[i].symbol)
                .collect();
            symbols.sort_unstable();
            assert_eq!(symbols, vec![0, 1, 2, 3]);
            // and reach four distinct next states (the code is recursive and non-catastrophic)
            let mut tos: Vec<u8> = t.outgoing(s).iter().map(|&i| t.branches()[i].to).collect();
            tos.sort_unstable();
            tos.dedup();
            assert_eq!(tos.len(), 4);
        }
    }

    #[test]
    fn recursion_has_period_seven() {
        // Driving the encoder with the all-zero input from a non-zero state
        // must return to that state after 7 steps (feedback 1 + D + D^3 is
        // primitive of degree 3).
        let mut state = 1u8;
        let start = state;
        let mut period = 0;
        for i in 1..=14 {
            state = step(state, 0).next_state;
            if state == start {
                period = i;
                break;
            }
        }
        assert_eq!(period, 7);
    }

    #[test]
    fn matrix_model_matches_transition_function() {
        // With zero input the state update must equal G * s.
        let g = Gf2Matrix3::state_update();
        for s in 0..8u8 {
            assert_eq!(step(s, 0).next_state, g.apply(s), "state {s}");
        }
    }

    #[test]
    fn circulation_state_closes_the_circle() {
        let sizes = [24usize, 36, 48, 96, 240];
        for n in sizes {
            // random-ish symbol sequence
            let symbols: Vec<u8> = (0..n).map(|i| ((i * 7 + 3) % 4) as u8).collect();
            // pass 1: from state 0
            let mut state = 0u8;
            for &u in &symbols {
                state = step(state, u).next_state;
            }
            let sc = CirculationState::compute(n, state).expect("exists");
            // pass 2: from the circulation state we must return to it
            let mut s = sc;
            for &u in &symbols {
                s = step(s, u).next_state;
            }
            assert_eq!(s, sc, "n = {n}");
        }
    }

    #[test]
    fn circulation_state_undefined_for_multiples_of_seven() {
        assert_eq!(CirculationState::compute(14, 3), None);
        assert!(CirculationState::compute(24, 3).is_some());
    }

    proptest! {
        #[test]
        fn circulation_closes_for_random_frames(
            symbols in proptest::collection::vec(0u8..4, 8..60)
        ) {
            let n = symbols.len();
            prop_assume!(n % 7 != 0);
            let mut state = 0u8;
            for &u in &symbols {
                state = step(state, u).next_state;
            }
            let sc = CirculationState::compute(n, state).unwrap();
            let mut s = sc;
            for &u in &symbols {
                s = step(s, u).next_state;
            }
            prop_assert_eq!(s, sc);
        }

        #[test]
        fn distinct_symbols_give_distinct_next_states(state in 0u8..8) {
            let t = DuoBinaryTrellis::new();
            let mut tos: Vec<u8> = t.outgoing(state).iter().map(|&i| t.branches()[i].to).collect();
            tos.sort_unstable();
            tos.dedup();
            prop_assert_eq!(tos.len(), 4);
        }
    }
}
