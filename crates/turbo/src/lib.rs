//! IEEE 802.16e (WiMAX) double-binary convolutional turbo codes (CTC) and
//! their Max-Log-MAP / Log-MAP decoders.
//!
//! This crate provides the turbo-code substrate of the NoC-based decoder of
//! Condo, Martina and Masera (DATE 2012):
//!
//! * [`trellis`] — the 8-state duo-binary circular recursive systematic
//!   convolutional (CRSC) constituent encoder, its trellis and the
//!   circulation-state computation (solved algebraically over GF(2) instead
//!   of using the standard's lookup table).
//! * [`interleaver`] — the almost-regular-permutation (ARP) two-step CTC
//!   interleaver with the WiMAX parameter set for all frame sizes.
//! * [`encoder`] — the parallel concatenation of two CRSC encoders with
//!   puncturing to the transmitted code rates.
//! * [`siso`] — the Soft-In-Soft-Out unit implementing the BCJR recursion of
//!   Eq. (1)–(5) of the paper with selectable `max*` operator.
//! * [`decoder`] — the full iterative turbo decoder, including the
//!   symbol-level / bit-level extrinsic exchange trade-off (paper Sec. IV.B,
//!   refs [23] and [24]).
//! * [`bitlevel`] — the Symbol-To-Bit (STB) and Bit-To-Symbol (BTS)
//!   conversion units.
//!
//! # Example
//!
//! ```
//! use wimax_turbo::{CtcCode, TurboDecoder, TurboDecoderConfig, TurboEncoder};
//! use fec_channel::{AwgnChannel, BpskModulator, EbN0};
//! use rand::SeedableRng;
//!
//! let code = CtcCode::wimax(24)?;              // 24 couples = 48 info bits
//! let encoder = TurboEncoder::new(&code);
//! let decoder = TurboDecoder::new(&code, TurboDecoderConfig::default());
//!
//! let info = vec![0u8; code.info_bits()];
//! let coded = encoder.encode(&info)?;
//!
//! let ch = AwgnChannel::for_code_rate(EbN0::from_db(3.0), 0.5);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let tx = BpskModulator::new().modulate(&coded);
//! let rx = ch.transmit(&tx, &mut rng);
//! let llrs = ch.llrs(&rx);
//!
//! let out = decoder.decode(&llrs)?;
//! assert_eq!(out.info_bits.len(), code.info_bits());
//! # Ok::<(), wimax_turbo::TurboError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod binary;
pub mod bitlevel;
pub mod codec;
pub mod decoder;
pub mod encoder;
pub mod interleaver;
pub mod siso;
pub mod trellis;

pub use binary::{BinarySiso, BinarySisoConfig, BinarySisoInput, BinaryTrellis, TrellisBoundary};
pub use codec::TurboCodec;
pub use decoder::{ExtrinsicExchange, TurboDecodeOutcome, TurboDecoder, TurboDecoderConfig};
pub use encoder::{CtcCode, PunctureRate, TurboEncoder};
pub use interleaver::{ArpInterleaver, ArpParameters};
pub use siso::{SisoConfig, SisoUnit};
pub use trellis::{CirculationState, DuoBinaryTrellis, NUM_STATES, SYMBOLS};

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TurboError {
    /// The requested frame size (in couples) is not a WiMAX CTC size.
    UnsupportedFrameSize {
        /// Offending number of couples.
        couples: usize,
    },
    /// The frame size is incompatible with the CRSC period (N mod 7 == 0),
    /// which makes the circulation state undefined.
    InvalidCirculation {
        /// Offending number of couples.
        couples: usize,
    },
    /// The ARP parameters do not describe a permutation.
    InvalidInterleaver,
    /// An input slice had the wrong length.
    InvalidLength {
        /// What the slice represents.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl fmt::Display for TurboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurboError::UnsupportedFrameSize { couples } => {
                write!(f, "frame size of {couples} couples is not a WiMAX CTC size")
            }
            TurboError::InvalidCirculation { couples } => write!(
                f,
                "frame size {couples} couples is a multiple of the CRSC period 7"
            ),
            TurboError::InvalidInterleaver => {
                write!(f, "ARP parameters do not yield a permutation")
            }
            TurboError::InvalidLength {
                what,
                expected,
                actual,
            } => write!(f, "{what} has length {actual}, expected {expected}"),
        }
    }
}

impl std::error::Error for TurboError {}

/// WiMAX CTC frame sizes expressed in couples (two information bits each).
pub const WIMAX_FRAME_SIZES: [usize; 17] = [
    24, 36, 48, 72, 96, 108, 120, 144, 180, 192, 216, 240, 480, 960, 1440, 1920, 2400,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_sizes_are_not_multiples_of_seven() {
        // The CRSC circulation state only exists when N mod 7 != 0.
        for &n in &WIMAX_FRAME_SIZES {
            assert_ne!(n % 7, 0, "frame size {n}");
        }
    }

    #[test]
    fn error_display_mentions_details() {
        let e = TurboError::UnsupportedFrameSize { couples: 100 };
        assert!(e.to_string().contains("100"));
        let e = TurboError::InvalidLength {
            what: "info",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("info"));
    }
}
