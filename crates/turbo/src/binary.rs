//! Generic single-binary recursive systematic convolutional (RSC) trellises
//! and the binary Max-Log-MAP SISO.
//!
//! The duo-binary SISO of [`crate::siso`] is hardwired to the 802.16e CRSC
//! trellis; this module factors the same BCJR machinery (branch metrics,
//! normalized forward/backward recursions, `max*` accumulation from
//! [`fec_fixed::MaxStar`]) into a form driven by an arbitrary binary trellis,
//! so that single-binary turbo codes — the 3GPP LTE rate-1/3 code in the
//! `code-tables` crate — can reuse it instead of carrying their own BCJR.
//!
//! Unlike the circular WiMAX trellis, LTE terminates both constituent
//! trellises with tail bits, so the SISO supports fixed boundary states
//! ([`TrellisBoundary::Terminated`]) next to the uniform boundary used for
//! unterminated windows.

use fec_fixed::{MaxStar, MaxStarMode};

/// One branch of a binary trellis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinaryBranch {
    /// Starting state.
    pub from: u8,
    /// Ending state.
    pub to: u8,
    /// Input (systematic) bit of the branch.
    pub input: u8,
    /// Parity bit emitted on the branch.
    pub parity: u8,
}

/// A pre-computed binary trellis: `states x 2` branches.
#[derive(Debug, Clone)]
pub struct BinaryTrellis {
    states: usize,
    branches: Vec<BinaryBranch>,
}

impl BinaryTrellis {
    /// Builds the trellis from a transition function mapping
    /// `(state, input bit)` to `(next state, parity bit)`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is zero or the transition function leaves the
    /// state range.
    pub fn from_step(states: usize, step: impl Fn(u8, u8) -> (u8, u8)) -> Self {
        assert!(states > 0, "need at least one state");
        let mut branches = Vec::with_capacity(2 * states);
        for state in 0..states as u8 {
            for bit in 0..2u8 {
                let (to, parity) = step(state, bit);
                assert!(
                    (to as usize) < states,
                    "transition from state {state} leaves the state range"
                );
                branches.push(BinaryBranch {
                    from: state,
                    to,
                    input: bit,
                    parity: parity & 1,
                });
            }
        }
        BinaryTrellis { states, branches }
    }

    /// Number of trellis states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// All `2 * states` branches, ordered by `(from, input)`.
    pub fn branches(&self) -> &[BinaryBranch] {
        &self.branches
    }

    /// Convenience for encoders: the `(next state, parity)` of feeding
    /// `bit` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `bit` is out of range.
    pub fn step(&self, state: u8, bit: u8) -> (u8, u8) {
        assert!((state as usize) < self.states, "state out of range");
        assert!(bit < 2, "bit out of range");
        let br = self.branches[2 * state as usize + bit as usize];
        (br.to, br.parity)
    }
}

/// Boundary condition of a SISO run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrellisBoundary {
    /// Both ends pinned to state 0 (tail-bit terminated trellis, as in LTE).
    Terminated,
    /// Uniform metrics at both ends (unterminated window).
    Open,
}

/// Configuration of the binary SISO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinarySisoConfig {
    /// Which `max*` flavour to use (Max-Log-MAP by default, matching the
    /// duo-binary SISO).
    pub max_star: MaxStarMode,
    /// Extrinsic scaling factor `sigma <= 1` compensating the Max-Log
    /// optimism.
    pub scale: f64,
}

impl Default for BinarySisoConfig {
    fn default() -> Self {
        BinarySisoConfig {
            max_star: MaxStarMode::MaxLog,
            scale: 0.75,
        }
    }
}

/// Soft inputs of one binary SISO half-iteration.  All vectors share one
/// length (the trellis-step count, including any tail steps) and use the
/// crate's LLR convention: positive favours bit 0.
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySisoInput {
    /// Channel LLRs of the systematic bits.
    pub sys: Vec<f64>,
    /// Channel LLRs of the parity bits (0 where punctured).
    pub par: Vec<f64>,
    /// A-priori LLRs (extrinsic from the other SISO; 0 on tail steps).
    pub apriori: Vec<f64>,
}

impl BinarySisoInput {
    /// Creates an input with neutral a-priori information.
    pub fn new(sys: Vec<f64>, par: Vec<f64>) -> Self {
        let n = sys.len();
        BinarySisoInput {
            sys,
            par,
            apriori: vec![0.0; n],
        }
    }

    /// Number of trellis steps.
    pub fn len(&self) -> usize {
        self.sys.len()
    }

    /// True for an empty frame.
    pub fn is_empty(&self) -> bool {
        self.sys.is_empty()
    }
}

/// Soft outputs of one binary SISO half-iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySisoOutput {
    /// Extrinsic LLRs (already scaled), one per trellis step.
    pub extrinsic: Vec<f64>,
    /// A-posteriori LLRs, one per trellis step (positive favours bit 0).
    pub aposteriori: Vec<f64>,
}

impl BinarySisoOutput {
    /// Hard decision for step `j` (0 when the a-posteriori LLR is
    /// non-negative, matching [`fec_fixed::Llr::hard_bit`]).
    pub fn hard_bit(&self, j: usize) -> u8 {
        u8::from(self.aposteriori[j] < 0.0)
    }
}

/// A binary SISO unit bound to one trellis.
///
/// # Example
///
/// ```
/// use wimax_turbo::binary::{
///     BinarySiso, BinarySisoConfig, BinarySisoInput, BinaryTrellis, TrellisBoundary,
/// };
///
/// // A 2-state accumulator: parity is the running XOR of the inputs.
/// let trellis = BinaryTrellis::from_step(2, |s, b| (s ^ b, s ^ b));
/// let siso = BinarySiso::new(trellis, BinarySisoConfig::default());
/// let input = BinarySisoInput::new(vec![4.0; 8], vec![4.0; 8]);
/// let out = siso.run(&input, TrellisBoundary::Open);
/// assert!((0..8).all(|j| out.hard_bit(j) == 0));
/// ```
#[derive(Debug, Clone)]
pub struct BinarySiso {
    trellis: BinaryTrellis,
    config: BinarySisoConfig,
    max_star: MaxStar,
}

impl BinarySiso {
    /// Creates a SISO for `trellis` with the given configuration.
    pub fn new(trellis: BinaryTrellis, config: BinarySisoConfig) -> Self {
        let max_star = MaxStar::new(config.max_star);
        BinarySiso {
            trellis,
            config,
            max_star,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &BinarySisoConfig {
        &self.config
    }

    /// The trellis.
    pub fn trellis(&self) -> &BinaryTrellis {
        &self.trellis
    }

    /// Runs one half-iteration over the whole frame.
    ///
    /// # Panics
    ///
    /// Panics if the input vectors do not all have the same length.
    pub fn run(&self, input: &BinarySisoInput, boundary: TrellisBoundary) -> BinarySisoOutput {
        let n = input.len();
        assert!(
            input.par.len() == n && input.apriori.len() == n,
            "SISO input vectors must have equal length"
        );
        let states = self.trellis.states();
        let ms = &self.max_star;

        // Branch metrics: gamma[j][branch].
        let branches = self.trellis.branches();
        let gammas: Vec<Vec<f64>> = (0..n)
            .map(|j| {
                let lu = input.sys[j] + input.apriori[j];
                let lp = input.par[j];
                branches
                    .iter()
                    .map(|br| {
                        0.5 * ((1.0 - 2.0 * f64::from(br.input)) * lu
                            + (1.0 - 2.0 * f64::from(br.parity)) * lp)
                    })
                    .collect()
            })
            .collect();

        let boundary_metrics = |pinned: bool| -> Vec<f64> {
            if pinned {
                let mut m = vec![f64::NEG_INFINITY; states];
                m[0] = 0.0;
                m
            } else {
                vec![0.0; states]
            }
        };
        let pinned = boundary == TrellisBoundary::Terminated;

        // Forward recursion.
        let mut alpha = vec![boundary_metrics(pinned)];
        for j in 0..n {
            let mut next = vec![f64::NEG_INFINITY; states];
            for (idx, br) in branches.iter().enumerate() {
                let v = alpha[j][br.from as usize] + gammas[j][idx];
                next[br.to as usize] = ms.apply(next[br.to as usize], v);
            }
            normalize(&mut next);
            alpha.push(next);
        }

        // Backward recursion.
        let mut beta = vec![vec![0.0f64; states]; n + 1];
        beta[n] = boundary_metrics(pinned);
        for j in (0..n).rev() {
            let mut prev = vec![f64::NEG_INFINITY; states];
            for (idx, br) in branches.iter().enumerate() {
                let v = beta[j + 1][br.to as usize] + gammas[j][idx];
                prev[br.from as usize] = ms.apply(prev[br.from as usize], v);
            }
            normalize(&mut prev);
            beta[j] = prev;
        }

        // A-posteriori and extrinsic LLRs (positive favours bit 0).
        let mut extrinsic = Vec::with_capacity(n);
        let mut aposteriori = Vec::with_capacity(n);
        for j in 0..n {
            let mut m0 = f64::NEG_INFINITY;
            let mut m1 = f64::NEG_INFINITY;
            for (idx, br) in branches.iter().enumerate() {
                let b_e = alpha[j][br.from as usize] + gammas[j][idx] + beta[j + 1][br.to as usize];
                if br.input == 0 {
                    m0 = ms.apply(m0, b_e);
                } else {
                    m1 = ms.apply(m1, b_e);
                }
            }
            let app = m0 - m1;
            aposteriori.push(app);
            extrinsic.push(self.config.scale * (app - input.sys[j] - input.apriori[j]));
        }

        BinarySisoOutput {
            extrinsic,
            aposteriori,
        }
    }
}

fn normalize(metrics: &mut [f64]) {
    let max = metrics.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max.is_finite() {
        for m in metrics.iter_mut() {
            *m -= max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The LTE/UMTS 8-state RSC: feedback 1 + D^2 + D^3, parity 1 + D + D^3.
    fn lte_step(state: u8, bit: u8) -> (u8, u8) {
        let r1 = (state >> 2) & 1;
        let r2 = (state >> 1) & 1;
        let r3 = state & 1;
        let d = bit ^ r2 ^ r3;
        let parity = d ^ r1 ^ r3;
        ((d << 2) | (r1 << 1) | r2, parity)
    }

    fn lte_trellis() -> BinaryTrellis {
        BinaryTrellis::from_step(8, lte_step)
    }

    #[test]
    fn trellis_connectivity_is_uniform() {
        let t = lte_trellis();
        assert_eq!(t.branches().len(), 16);
        let mut incoming = [0usize; 8];
        for br in t.branches() {
            incoming[br.to as usize] += 1;
        }
        assert!(incoming.iter().all(|&c| c == 2));
        // the two branches out of a state reach distinct next states
        for s in 0..8u8 {
            assert_ne!(t.step(s, 0).0, t.step(s, 1).0, "state {s}");
        }
    }

    #[test]
    fn noiseless_all_zero_decodes_to_zero() {
        let siso = BinarySiso::new(lte_trellis(), BinarySisoConfig::default());
        let n = 16;
        let input = BinarySisoInput::new(vec![5.0; n], vec![5.0; n]);
        for boundary in [TrellisBoundary::Open, TrellisBoundary::Terminated] {
            let out = siso.run(&input, boundary);
            assert!((0..n).all(|j| out.hard_bit(j) == 0));
            assert!(out.extrinsic.iter().all(|e| e.is_finite()));
        }
    }

    #[test]
    fn noiseless_random_frame_is_recovered() {
        let t = lte_trellis();
        let siso = BinarySiso::new(lte_trellis(), BinarySisoConfig::default());
        let bits: Vec<u8> = (0..40).map(|i| ((i * 5 + 1) % 3 % 2) as u8).collect();
        let mut state = 0u8;
        let mut parity = Vec::new();
        for &b in &bits {
            let (ns, p) = t.step(state, b);
            state = ns;
            parity.push(p);
        }
        let llr = |b: u8| 6.0 * (1.0 - 2.0 * f64::from(b));
        let input = BinarySisoInput::new(
            bits.iter().map(|&b| llr(b)).collect(),
            parity.iter().map(|&p| llr(p)).collect(),
        );
        let out = siso.run(&input, TrellisBoundary::Open);
        for (j, &b) in bits.iter().enumerate() {
            assert_eq!(out.hard_bit(j), b, "bit {j}");
        }
    }

    #[test]
    fn parity_alone_carries_information_on_terminated_trellis() {
        // Erased systematic bits: the recursion plus termination still pins
        // the all-zero path.
        let siso = BinarySiso::new(lte_trellis(), BinarySisoConfig::default());
        let n = 20;
        let input = BinarySisoInput::new(vec![0.0; n], vec![6.0; n]);
        let out = siso.run(&input, TrellisBoundary::Terminated);
        let energy: f64 = out.extrinsic.iter().map(|e| e.abs()).sum();
        assert!(energy > 1.0, "extrinsic energy {energy}");
        assert!((0..n).all(|j| out.hard_bit(j) == 0));
    }

    #[test]
    fn apriori_shifts_the_decision() {
        let siso = BinarySiso::new(lte_trellis(), BinarySisoConfig::default());
        let n = 8;
        // weak channel evidence for 1, strong a-priori for 0 on every bit
        let mut input = BinarySisoInput::new(vec![-0.2; n], vec![0.0; n]);
        input.apriori = vec![4.0; n];
        let out = siso.run(&input, TrellisBoundary::Open);
        assert!((0..n).all(|j| out.hard_bit(j) == 0));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_inputs_panic() {
        let siso = BinarySiso::new(lte_trellis(), BinarySisoConfig::default());
        let input = BinarySisoInput {
            sys: vec![0.0; 4],
            par: vec![0.0; 3],
            apriori: vec![0.0; 4],
        };
        let _ = siso.run(&input, TrellisBoundary::Open);
    }

    #[test]
    #[should_panic(expected = "leaves the state range")]
    fn bad_transition_function_panics() {
        let _ = BinaryTrellis::from_step(2, |_, _| (7, 0));
    }
}
