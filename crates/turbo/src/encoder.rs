//! The WiMAX convolutional turbo-code encoder (parallel concatenation of two
//! duo-binary CRSC encoders) and its puncturing to the transmitted rates.

use crate::interleaver::ArpInterleaver;
use crate::trellis::{step, CirculationState};
use crate::{TurboError, WIMAX_FRAME_SIZES};

/// Code rates obtained by puncturing the rate-1/3 mother code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PunctureRate {
    /// Rate 1/3: transmit `A, B, Y1, W1, Y2, W2`.
    R13,
    /// Rate 1/2: transmit `A, B, Y1, Y2` (the rate used by the paper's
    /// evaluation: N = 2400 info bits, r = 0.5).
    #[default]
    R12,
    /// Rate 2/3: transmit `A, B` plus `Y1` of even couples and `Y2` of odd
    /// couples.
    R23,
    /// Rate 3/4: transmit `A, B` plus `Y1`/`Y2` of every other even/odd
    /// couple (approximation of the standard's subblock puncturing).
    R34,
}

impl PunctureRate {
    /// Nominal code rate.
    pub fn as_f64(&self) -> f64 {
        match self {
            PunctureRate::R13 => 1.0 / 3.0,
            PunctureRate::R12 => 0.5,
            PunctureRate::R23 => 2.0 / 3.0,
            PunctureRate::R34 => 0.75,
        }
    }

    /// Whether parity `Y1` of couple `j` is transmitted.
    pub fn keeps_y1(&self, j: usize) -> bool {
        match self {
            PunctureRate::R13 | PunctureRate::R12 => true,
            PunctureRate::R23 => j.is_multiple_of(2),
            PunctureRate::R34 => j.is_multiple_of(4),
        }
    }

    /// Whether parity `W1` of couple `j` is transmitted.
    pub fn keeps_w1(&self, _j: usize) -> bool {
        matches!(self, PunctureRate::R13)
    }

    /// Whether parity `Y2` of couple `j` is transmitted.
    pub fn keeps_y2(&self, j: usize) -> bool {
        match self {
            PunctureRate::R13 | PunctureRate::R12 => true,
            PunctureRate::R23 => j % 2 == 1,
            PunctureRate::R34 => j % 4 == 2,
        }
    }

    /// Whether parity `W2` of couple `j` is transmitted.
    pub fn keeps_w2(&self, _j: usize) -> bool {
        matches!(self, PunctureRate::R13)
    }
}

/// A WiMAX double-binary turbo code: frame size plus puncturing.
///
/// # Example
///
/// ```
/// use wimax_turbo::{CtcCode, PunctureRate};
///
/// let code = CtcCode::wimax(2400)?;                 // N = 2400 couples
/// assert_eq!(code.info_bits(), 4800);
/// assert_eq!(code.rate(), PunctureRate::R12);
/// assert_eq!(code.coded_bits(), 9600);
/// # Ok::<(), wimax_turbo::TurboError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtcCode {
    couples: usize,
    rate: PunctureRate,
    interleaver: ArpInterleaver,
}

impl CtcCode {
    /// Builds the rate-1/2 WiMAX CTC with the given frame size in couples.
    ///
    /// # Errors
    ///
    /// Returns an error if the size is not in the WiMAX table or is a
    /// multiple of 7.
    pub fn wimax(couples: usize) -> Result<Self, TurboError> {
        Self::with_rate(couples, PunctureRate::R12)
    }

    /// Builds a WiMAX CTC with an explicit puncture rate.
    ///
    /// # Errors
    ///
    /// Same as [`CtcCode::wimax`].
    pub fn with_rate(couples: usize, rate: PunctureRate) -> Result<Self, TurboError> {
        if !WIMAX_FRAME_SIZES.contains(&couples) {
            return Err(TurboError::UnsupportedFrameSize { couples });
        }
        let interleaver = ArpInterleaver::wimax(couples)?;
        Self::from_interleaver(interleaver, rate)
    }

    /// Builds a duo-binary CTC from an already-validated couple interleaver
    /// and a puncture rate.  The constituent trellis is the shared 8-state
    /// duo-binary CRSC used by both 802.16e and DVB-RCS; standards that reuse
    /// it with their own interleaver parameter tables (DVB-RCS in the
    /// `code-tables` crate) construct their codes through this entry point.
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::InvalidCirculation`] if the frame size is a
    /// multiple of the CRSC period 7 (the circulation state would be
    /// undefined).
    pub fn from_interleaver(
        interleaver: ArpInterleaver,
        rate: PunctureRate,
    ) -> Result<Self, TurboError> {
        let couples = interleaver.len();
        if couples.is_multiple_of(7) {
            return Err(TurboError::InvalidCirculation { couples });
        }
        Ok(CtcCode {
            couples,
            rate,
            interleaver,
        })
    }

    /// Frame size in couples.
    pub fn couples(&self) -> usize {
        self.couples
    }

    /// Number of information bits `2 * couples`.
    pub fn info_bits(&self) -> usize {
        2 * self.couples
    }

    /// Puncture rate.
    pub fn rate(&self) -> PunctureRate {
        self.rate
    }

    /// The ARP interleaver.
    pub fn interleaver(&self) -> &ArpInterleaver {
        &self.interleaver
    }

    /// Number of transmitted bits after puncturing.
    pub fn coded_bits(&self) -> usize {
        let n = self.couples;
        let parity: usize = (0..n)
            .map(|j| {
                usize::from(self.rate.keeps_y1(j))
                    + usize::from(self.rate.keeps_w1(j))
                    + usize::from(self.rate.keeps_y2(j))
                    + usize::from(self.rate.keeps_w2(j))
            })
            .sum();
        self.info_bits() + parity
    }

    /// The couple sequence seen by the second constituent encoder:
    /// interleaved order with the odd-position bit swap applied.
    pub fn interleaved_couples(&self, couples: &[(u8, u8)]) -> Vec<(u8, u8)> {
        self.interleaver.interleave_couples(couples)
    }
}

/// Parity streams produced by one CRSC constituent encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstituentOutput {
    /// Circulation (initial = final) state used.
    pub circulation_state: u8,
    /// Parity `Y` bit per couple.
    pub parity_y: Vec<u8>,
    /// Parity `W` bit per couple.
    pub parity_w: Vec<u8>,
}

/// Encodes one constituent CRSC code with circular termination.
///
/// # Errors
///
/// Returns [`TurboError::InvalidCirculation`] if the number of couples is a
/// multiple of 7.
pub fn encode_constituent(couples: &[(u8, u8)]) -> Result<ConstituentOutput, TurboError> {
    let n = couples.len();
    // Pass 1: find the final state from the all-zero initial state.
    let mut state = 0u8;
    for &(a, b) in couples {
        state = step(state, ((a & 1) << 1) | (b & 1)).next_state;
    }
    let sc =
        CirculationState::compute(n, state).ok_or(TurboError::InvalidCirculation { couples: n })?;
    // Pass 2: encode from the circulation state.
    let mut parity_y = Vec::with_capacity(n);
    let mut parity_w = Vec::with_capacity(n);
    let mut s = sc;
    for &(a, b) in couples {
        let out = step(s, ((a & 1) << 1) | (b & 1));
        parity_y.push(out.parity_y);
        parity_w.push(out.parity_w);
        s = out.next_state;
    }
    debug_assert_eq!(s, sc, "circular termination must close");
    Ok(ConstituentOutput {
        circulation_state: sc,
        parity_y,
        parity_w,
    })
}

/// The full CTC encoder.
///
/// The transmitted bit layout is sub-block oriented, matching the order the
/// decoder expects:
/// `A[0..N] | B[0..N] | Y1 (kept) | W1 (kept) | Y2 (kept) | W2 (kept)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurboEncoder {
    code: CtcCode,
}

impl TurboEncoder {
    /// Creates an encoder for the given code.
    pub fn new(code: &CtcCode) -> Self {
        TurboEncoder { code: code.clone() }
    }

    /// The code being encoded.
    pub fn code(&self) -> &CtcCode {
        &self.code
    }

    /// Encodes `info` (length `2 * couples`, couple `j` is bits `2j`, `2j+1`).
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::InvalidLength`] if `info` has the wrong length.
    pub fn encode(&self, info: &[u8]) -> Result<Vec<u8>, TurboError> {
        let n = self.code.couples();
        if info.len() != 2 * n {
            return Err(TurboError::InvalidLength {
                what: "information bits",
                expected: 2 * n,
                actual: info.len(),
            });
        }
        let couples: Vec<(u8, u8)> = (0..n)
            .map(|j| (info[2 * j] & 1, info[2 * j + 1] & 1))
            .collect();
        let enc1 = encode_constituent(&couples)?;
        let interleaved = self.code.interleaved_couples(&couples);
        let enc2 = encode_constituent(&interleaved)?;

        let rate = self.code.rate();
        let mut out = Vec::with_capacity(self.code.coded_bits());
        out.extend(couples.iter().map(|&(a, _)| a));
        out.extend(couples.iter().map(|&(_, b)| b));
        out.extend(
            (0..n)
                .filter(|&j| rate.keeps_y1(j))
                .map(|j| enc1.parity_y[j]),
        );
        out.extend(
            (0..n)
                .filter(|&j| rate.keeps_w1(j))
                .map(|j| enc1.parity_w[j]),
        );
        out.extend(
            (0..n)
                .filter(|&j| rate.keeps_y2(j))
                .map(|j| enc2.parity_y[j]),
        );
        out.extend(
            (0..n)
                .filter(|&j| rate.keeps_w2(j))
                .map(|j| enc2.parity_w[j]),
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rate_accounting() {
        let code = CtcCode::wimax(24).unwrap();
        assert_eq!(code.info_bits(), 48);
        assert_eq!(code.coded_bits(), 96); // rate 1/2
        let code = CtcCode::with_rate(24, PunctureRate::R13).unwrap();
        assert_eq!(code.coded_bits(), 144); // rate 1/3
        let code = CtcCode::with_rate(24, PunctureRate::R23).unwrap();
        assert_eq!(code.coded_bits(), 72); // rate 2/3
    }

    #[test]
    fn paper_code_dimensions() {
        // Table II/III of the paper: DBTC N = 4800 transmitted as rate 1/2,
        // i.e. 2400 couples = 4800 information bits.
        let code = CtcCode::wimax(2400).unwrap();
        assert_eq!(code.info_bits(), 4800);
        assert_eq!(code.coded_bits(), 9600);
    }

    #[test]
    fn unsupported_sizes_rejected() {
        assert!(CtcCode::wimax(100).is_err());
        assert!(CtcCode::wimax(0).is_err());
    }

    #[test]
    fn from_interleaver_accepts_non_wimax_sizes() {
        // A 64-couple ARP permutation is not a WiMAX frame size but is a
        // perfectly valid duo-binary CTC (DVB-RCS defines one): the generic
        // constructor accepts it, the WiMAX one rejects it.
        let params = crate::ArpParameters {
            couples: 64,
            p0: 7,
            p1: 34,
            p2: 32,
            p3: 2,
        };
        let pi = ArpInterleaver::from_parameters(params).unwrap();
        let code = CtcCode::from_interleaver(pi, PunctureRate::R12).unwrap();
        assert_eq!(code.couples(), 64);
        assert_eq!(code.info_bits(), 128);
        assert_eq!(code.coded_bits(), 256);
        assert!(CtcCode::wimax(64).is_err());
        // the full encode path runs on it
        let enc = TurboEncoder::new(&code);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let info: Vec<u8> = (0..128).map(|_| rng.gen_range(0..=1)).collect();
        let cw = enc.encode(&info).unwrap();
        assert_eq!(cw.len(), code.coded_bits());
        assert_eq!(
            &cw[..64],
            &info.iter().step_by(2).copied().collect::<Vec<_>>()[..]
        );
    }

    #[test]
    fn from_interleaver_rejects_multiples_of_seven() {
        // 28 couples: multiple of 4 (valid ARP) but of the CRSC period too.
        let params = crate::ArpParameters {
            couples: 28,
            p0: 5,
            p1: 0,
            p2: 0,
            p3: 0,
        };
        let pi = ArpInterleaver::from_parameters(params).unwrap();
        assert!(matches!(
            CtcCode::from_interleaver(pi, PunctureRate::R12),
            Err(TurboError::InvalidCirculation { couples: 28 })
        ));
    }

    #[test]
    fn constituent_encoding_is_circular() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let couples: Vec<(u8, u8)> = (0..48)
            .map(|_| (rng.gen_range(0..=1), rng.gen_range(0..=1)))
            .collect();
        let out = encode_constituent(&couples).unwrap();
        assert_eq!(out.parity_y.len(), 48);
        assert_eq!(out.parity_w.len(), 48);
        // re-run from the circulation state and confirm closure
        let mut s = out.circulation_state;
        for &(a, b) in &couples {
            s = step(s, (a << 1) | b).next_state;
        }
        assert_eq!(s, out.circulation_state);
    }

    #[test]
    fn constituent_rejects_multiples_of_seven() {
        let couples = vec![(0u8, 0u8); 14];
        assert!(matches!(
            encode_constituent(&couples),
            Err(TurboError::InvalidCirculation { couples: 14 })
        ));
    }

    #[test]
    fn all_zero_info_encodes_to_all_zero() {
        let code = CtcCode::wimax(24).unwrap();
        let enc = TurboEncoder::new(&code);
        let cw = enc.encode(&[0u8; 48]).unwrap();
        assert!(cw.iter().all(|&b| b == 0));
        assert_eq!(cw.len(), code.coded_bits());
    }

    #[test]
    fn systematic_prefix_matches_info() {
        let code = CtcCode::wimax(36).unwrap();
        let enc = TurboEncoder::new(&code);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let info: Vec<u8> = (0..72).map(|_| rng.gen_range(0..=1)).collect();
        let cw = enc.encode(&info).unwrap();
        let n = code.couples();
        for j in 0..n {
            assert_eq!(cw[j], info[2 * j], "A[{j}]");
            assert_eq!(cw[n + j], info[2 * j + 1], "B[{j}]");
        }
    }

    #[test]
    fn encode_wrong_length_rejected() {
        let code = CtcCode::wimax(24).unwrap();
        let enc = TurboEncoder::new(&code);
        assert!(matches!(
            enc.encode(&[0u8; 10]),
            Err(TurboError::InvalidLength {
                expected: 48,
                actual: 10,
                ..
            })
        ));
    }

    #[test]
    fn encoding_is_deterministic_and_rate_dependent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let info: Vec<u8> = (0..96).map(|_| rng.gen_range(0..=1)).collect();
        let c12 = TurboEncoder::new(&CtcCode::wimax(48).unwrap())
            .encode(&info)
            .unwrap();
        let c12b = TurboEncoder::new(&CtcCode::wimax(48).unwrap())
            .encode(&info)
            .unwrap();
        assert_eq!(c12, c12b);
        let c13 = TurboEncoder::new(&CtcCode::with_rate(48, PunctureRate::R13).unwrap())
            .encode(&info)
            .unwrap();
        assert!(c13.len() > c12.len());
        // the rate-1/2 stream is a prefix-compatible subset: A and B sub-blocks agree
        assert_eq!(&c13[..96], &c12[..96]);
    }

    #[test]
    fn puncture_patterns_keep_expected_fraction() {
        let n = 240;
        for (rate, expect_parity) in [
            (PunctureRate::R13, 4 * n),
            (PunctureRate::R12, 2 * n),
            (PunctureRate::R23, n),
            (PunctureRate::R34, n / 2),
        ] {
            let parity: usize = (0..n)
                .map(|j| {
                    usize::from(rate.keeps_y1(j))
                        + usize::from(rate.keeps_w1(j))
                        + usize::from(rate.keeps_y2(j))
                        + usize::from(rate.keeps_w2(j))
                })
                .sum();
            assert_eq!(parity, expect_parity, "{rate:?}");
        }
    }
}
