//! The two-step almost-regular-permutation (ARP) interleaver of the WiMAX CTC.
//!
//! Step 1 swaps the two bits of every odd-indexed couple; step 2 permutes the
//! couple positions with the ARP law
//!
//! ```text
//! P(j) = (P0*j + 1 + Q(j)) mod N        with
//! Q(j) = 0            for j = 0 (mod 4)
//!        N/2 + P1     for j = 1 (mod 4)
//!        P2           for j = 2 (mod 4)
//!        N/2 + P3     for j = 3 (mod 4)
//! ```
//!
//! The `(P0, P1, P2, P3)` parameters per frame size follow the 802.16e CTC
//! channel-coding table.  Transcription of the larger sizes is best-effort
//! (see `DESIGN.md`); every parameter set is validated to be a permutation at
//! construction time, so a transcription slip can only shift BER performance
//! marginally, never break correctness.

use crate::TurboError;

/// ARP parameter quadruple for a given frame size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArpParameters {
    /// Number of couples `N`.
    pub couples: usize,
    /// Multiplicative parameter `P0` (coprime with `N`).
    pub p0: usize,
    /// Additive parameter `P1`.
    pub p1: usize,
    /// Additive parameter `P2`.
    pub p2: usize,
    /// Additive parameter `P3`.
    pub p3: usize,
}

/// The WiMAX CTC interleaver parameter table (frame size in couples).
pub const WIMAX_ARP_TABLE: [ArpParameters; 17] = [
    ArpParameters {
        couples: 24,
        p0: 5,
        p1: 0,
        p2: 0,
        p3: 0,
    },
    ArpParameters {
        couples: 36,
        p0: 11,
        p1: 18,
        p2: 0,
        p3: 18,
    },
    ArpParameters {
        couples: 48,
        p0: 13,
        p1: 24,
        p2: 0,
        p3: 24,
    },
    ArpParameters {
        couples: 72,
        p0: 11,
        p1: 6,
        p2: 0,
        p3: 6,
    },
    ArpParameters {
        couples: 96,
        p0: 7,
        p1: 48,
        p2: 24,
        p3: 72,
    },
    ArpParameters {
        couples: 108,
        p0: 11,
        p1: 54,
        p2: 56,
        p3: 2,
    },
    ArpParameters {
        couples: 120,
        p0: 13,
        p1: 60,
        p2: 0,
        p3: 60,
    },
    ArpParameters {
        couples: 144,
        p0: 17,
        p1: 74,
        p2: 72,
        p3: 2,
    },
    ArpParameters {
        couples: 180,
        p0: 23,
        p1: 90,
        p2: 0,
        p3: 90,
    },
    ArpParameters {
        couples: 192,
        p0: 11,
        p1: 96,
        p2: 48,
        p3: 144,
    },
    ArpParameters {
        couples: 216,
        p0: 13,
        p1: 108,
        p2: 0,
        p3: 108,
    },
    ArpParameters {
        couples: 240,
        p0: 13,
        p1: 120,
        p2: 60,
        p3: 180,
    },
    ArpParameters {
        couples: 480,
        p0: 53,
        p1: 62,
        p2: 12,
        p3: 2,
    },
    ArpParameters {
        couples: 960,
        p0: 43,
        p1: 64,
        p2: 300,
        p3: 824,
    },
    ArpParameters {
        couples: 1440,
        p0: 43,
        p1: 720,
        p2: 360,
        p3: 540,
    },
    ArpParameters {
        couples: 1920,
        p0: 31,
        p1: 8,
        p2: 24,
        p3: 16,
    },
    ArpParameters {
        couples: 2400,
        p0: 53,
        p1: 66,
        p2: 24,
        p3: 2,
    },
];

/// A validated ARP interleaver: a couple-level permutation plus the per-couple
/// bit swap of step 1.
///
/// # Example
///
/// ```
/// use wimax_turbo::ArpInterleaver;
///
/// let pi = ArpInterleaver::wimax(24)?;
/// assert_eq!(pi.len(), 24);
/// // the map is a bijection
/// let mut seen = vec![false; 24];
/// for j in 0..24 {
///     seen[pi.permute(j)] = true;
/// }
/// assert!(seen.iter().all(|&s| s));
/// # Ok::<(), wimax_turbo::TurboError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArpInterleaver {
    params: ArpParameters,
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl ArpInterleaver {
    /// Builds the interleaver for a WiMAX frame size (in couples).
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::UnsupportedFrameSize`] for sizes outside the
    /// WiMAX table, or [`TurboError::InvalidInterleaver`] if the table entry
    /// does not describe a permutation.
    pub fn wimax(couples: usize) -> Result<Self, TurboError> {
        let params = WIMAX_ARP_TABLE
            .iter()
            .find(|p| p.couples == couples)
            .copied()
            .ok_or(TurboError::UnsupportedFrameSize { couples })?;
        Self::from_parameters(params)
    }

    /// Builds the interleaver from explicit ARP parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TurboError::InvalidInterleaver`] if the parameters do not
    /// yield a bijection.
    pub fn from_parameters(params: ArpParameters) -> Result<Self, TurboError> {
        let n = params.couples;
        if n == 0 || !n.is_multiple_of(4) {
            return Err(TurboError::InvalidInterleaver);
        }
        let mut forward = vec![0usize; n];
        for (j, f) in forward.iter_mut().enumerate() {
            let q = match j % 4 {
                0 => 0,
                1 => n / 2 + params.p1,
                2 => params.p2,
                _ => n / 2 + params.p3,
            };
            *f = (params.p0 * j + 1 + q) % n;
        }
        let mut inverse = vec![usize::MAX; n];
        for (j, &p) in forward.iter().enumerate() {
            if inverse[p] != usize::MAX {
                return Err(TurboError::InvalidInterleaver);
            }
            inverse[p] = j;
        }
        Ok(ArpInterleaver {
            params,
            forward,
            inverse,
        })
    }

    /// The ARP parameters.
    pub fn parameters(&self) -> ArpParameters {
        self.params
    }

    /// Frame size in couples.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Returns `true` if the frame size is zero (never for valid parameters).
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Interleaved position of couple `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn permute(&self, j: usize) -> usize {
        self.forward[j]
    }

    /// Natural position feeding interleaved position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn inverse(&self, p: usize) -> usize {
        self.inverse[p]
    }

    /// Whether the couple at *natural* position `j` has its two bits swapped
    /// (step 1 of the interleaver; odd positions are swapped).
    pub fn swaps_couple(&self, j: usize) -> bool {
        j % 2 == 1
    }

    /// Interleaves a sequence of couples given as `(a, b)` pairs, applying
    /// both the bit swap and the position permutation: output position
    /// `permute(j)` receives the (possibly swapped) couple `j`.
    ///
    /// # Panics
    ///
    /// Panics if `couples.len() != self.len()`.
    pub fn interleave_couples<T: Copy>(&self, couples: &[(T, T)]) -> Vec<(T, T)> {
        assert_eq!(couples.len(), self.len(), "frame size mismatch");
        let mut out = vec![couples[0]; couples.len()];
        for (j, &(a, b)) in couples.iter().enumerate() {
            let v = if self.swaps_couple(j) { (b, a) } else { (a, b) };
            out[self.permute(j)] = v;
        }
        out
    }

    /// Spread factor: the minimum over all couple pairs `(i, j)` with
    /// `|i - j| <= window` of `|permute(i) - permute(j)| + |i - j|`.  A larger
    /// spread gives better turbo-code distance properties; exposed for
    /// diagnostics and interleaver-quality tests.
    pub fn spread(&self, window: usize) -> usize {
        let n = self.len();
        let mut best = usize::MAX;
        for i in 0..n {
            for d in 1..=window.min(n - 1) {
                let j = (i + d) % n;
                let pi = self.forward[i] as isize;
                let pj = self.forward[j] as isize;
                let dp = (pi - pj).unsigned_abs().min(n - (pi - pj).unsigned_abs());
                let spread = d.min(n - d) + dp;
                best = best.min(spread);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WIMAX_FRAME_SIZES;

    #[test]
    fn all_wimax_sizes_are_permutations() {
        for &n in &WIMAX_FRAME_SIZES {
            let pi = ArpInterleaver::wimax(n).unwrap_or_else(|e| panic!("size {n}: {e}"));
            let mut seen = vec![false; n];
            for j in 0..n {
                let p = pi.permute(j);
                assert!(!seen[p], "size {n}: position {p} hit twice");
                seen[p] = true;
                assert_eq!(pi.inverse(p), j);
            }
        }
    }

    #[test]
    fn unsupported_size_is_rejected() {
        assert!(matches!(
            ArpInterleaver::wimax(100),
            Err(TurboError::UnsupportedFrameSize { couples: 100 })
        ));
    }

    #[test]
    fn non_multiple_of_four_is_rejected() {
        let params = ArpParameters {
            couples: 26,
            p0: 5,
            p1: 0,
            p2: 0,
            p3: 0,
        };
        assert_eq!(
            ArpInterleaver::from_parameters(params),
            Err(TurboError::InvalidInterleaver)
        );
    }

    #[test]
    fn even_p0_is_not_a_permutation() {
        let params = ArpParameters {
            couples: 24,
            p0: 6,
            p1: 0,
            p2: 0,
            p3: 0,
        };
        assert_eq!(
            ArpInterleaver::from_parameters(params),
            Err(TurboError::InvalidInterleaver)
        );
    }

    #[test]
    fn swap_rule_is_odd_positions() {
        let pi = ArpInterleaver::wimax(24).unwrap();
        assert!(!pi.swaps_couple(0));
        assert!(pi.swaps_couple(1));
        assert!(!pi.swaps_couple(2));
    }

    #[test]
    fn interleave_couples_applies_swap_and_permutation() {
        let pi = ArpInterleaver::wimax(24).unwrap();
        let couples: Vec<(u8, u8)> = (0..24).map(|i| (i as u8, 100 + i as u8)).collect();
        let out = pi.interleave_couples(&couples);
        for j in 0..24 {
            let expected = if j % 2 == 1 {
                (couples[j].1, couples[j].0)
            } else {
                couples[j]
            };
            assert_eq!(out[pi.permute(j)], expected);
        }
    }

    #[test]
    #[should_panic(expected = "frame size mismatch")]
    fn interleave_wrong_length_panics() {
        let pi = ArpInterleaver::wimax(24).unwrap();
        let _ = pi.interleave_couples(&[(0u8, 0u8); 10]);
    }

    #[test]
    fn interleaver_has_nontrivial_spread() {
        let pi = ArpInterleaver::wimax(240).unwrap();
        // neighbouring couples must be sent far apart
        assert!(pi.spread(4) >= 8, "spread = {}", pi.spread(4));
    }

    #[test]
    fn table_covers_every_wimax_size_once() {
        assert_eq!(WIMAX_ARP_TABLE.len(), WIMAX_FRAME_SIZES.len());
        for &n in &WIMAX_FRAME_SIZES {
            assert_eq!(
                WIMAX_ARP_TABLE.iter().filter(|p| p.couples == n).count(),
                1,
                "size {n}"
            );
        }
    }
}
